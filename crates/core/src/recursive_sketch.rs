//! The Recursive Sketch of Braverman and Ostrovsky (Theorem 13).
//!
//! The reduction from g-SUM to heavy hitters works by subsampling: level `j`
//! of the sketch sees each item independently-ish with probability `2^{-j}`
//! (nested subsets drawn from one pairwise-independent hash).  Each level
//! runs a `(g, λ, ε, δ)`-heavy-hitter algorithm on its substream.  Writing
//! `cover_j` for level `j`'s cover and `sel_{j+1}(i)` for the indicator that
//! item `i` survives to level `j+1`, the estimator is assembled bottom-up:
//!
//! ```text
//! Y_L = Σ_{(i,w) ∈ cover_L} w
//! Y_j = 2·Y_{j+1} + Σ_{(i,w) ∈ cover_j} w · (1 − 2·sel_{j+1}(i))
//! ```
//!
//! and `Y_0` is the g-SUM estimate.  Intuitively, the items too light to be
//! caught at level `j` have their mass estimated by doubling the next level's
//! estimate, while the heavy items (whose sampling noise would dominate) are
//! accounted for exactly by their covers.  The paper uses this reduction with
//! heaviness `λ = ε²/log³ n`, giving an `O(log n)` space overhead over the
//! heavy-hitter routine (Theorem 13).

use crate::heavy_hitters::{GCover, HeavyHitterSketch};
use gsum_hash::KWiseHash;
use gsum_streams::checkpoint::{self, kind, Checkpoint, CheckpointError};
use gsum_streams::{IngestScratch, MergeError, MergeableSketch, StreamSink, Update};
use std::io::{Read, Write};

/// Reusable routing scratch for [`RecursiveSketch::update_batch`]: the
/// coalesce buffer plus the depth-partitioned sub-batch threaded down the
/// levels.  Transient — never part of checkpoint/merge/clone identity.
#[derive(Debug, Default)]
pub struct RouteScratch {
    coalesce: Vec<Update>,
    /// Distinct keys of the coalesced batch, handed to the selector's
    /// batched polynomial kernel.
    keys: Vec<u64>,
    /// Selector hash values, one per distinct key.
    hashes: Vec<u64>,
    /// Updates still alive at the current level, in item order.
    routed: Vec<Update>,
    /// `depths[t]` is the deepest level including `routed[t]`'s item
    /// (`trailing_zeros` of a 64-bit hash, clamped to the level count — fits
    /// `u8` with room to spare).
    depths: Vec<u8>,
}

/// The recursive g-SUM estimator, generic over the per-level heavy-hitter
/// sketch.
///
/// The sketch is a push-based [`StreamSink`]: each update is routed to every
/// level whose substream contains its item, and [`RecursiveSketch::estimate`]
/// can be queried at any prefix.  When the per-level sketches are
/// [`MergeableSketch`]es the whole structure is too, enabling sharded
/// ingestion.
#[derive(Debug, Clone)]
pub struct RecursiveSketch<S> {
    domain: u64,
    levels: Vec<S>,
    selector: KWiseHash,
    /// Master seed, kept so merges can verify hash compatibility.
    seed: u64,
    /// Reused routing scratch for `update_batch`.
    scratch: IngestScratch<RouteScratch>,
}

impl<S: HeavyHitterSketch> RecursiveSketch<S> {
    /// Create a recursive sketch with `levels` levels over `[0, domain)`.
    /// The `factory` builds the heavy-hitter sketch for each level (it
    /// receives the level index and a derived seed).
    ///
    /// # Panics
    /// Panics if `levels == 0` or `domain == 0`.
    pub fn new(
        domain: u64,
        levels: usize,
        seed: u64,
        mut factory: impl FnMut(usize, u64) -> S,
    ) -> Self {
        assert!(levels >= 1, "need at least one level");
        let seeds = gsum_hash::derive_seeds(seed, levels + 1);
        let level_sketches = (0..levels).map(|j| factory(j, seeds[j])).collect();
        Self::from_parts(
            domain,
            seed,
            KWiseHash::new(2, seeds[levels]),
            level_sketches,
        )
    }

    /// Assemble the sketch from already-built level sketches, re-deriving
    /// the subsampling selector from the master seed exactly as
    /// [`new`](Self::new) does — the checkpoint-rehydration entry point.
    ///
    /// # Panics
    /// Panics if `levels` is empty or `domain == 0`.
    fn assemble(domain: u64, seed: u64, levels: Vec<S>) -> Self {
        let seeds = gsum_hash::derive_seeds(seed, levels.len() + 1);
        let selector = KWiseHash::new(2, seeds[levels.len()]);
        Self::from_parts(domain, seed, selector, levels)
    }

    /// The shared final constructor behind [`new`](Self::new) (which already
    /// holds the derived seed array) and [`assemble`](Self::assemble).
    fn from_parts(domain: u64, seed: u64, selector: KWiseHash, levels: Vec<S>) -> Self {
        assert!(!levels.is_empty(), "need at least one level");
        assert!(domain > 0, "domain must be positive");
        Self {
            domain,
            levels,
            selector,
            seed,
            scratch: IngestScratch::default(),
        }
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// The domain size.
    pub fn domain(&self) -> u64 {
        self.domain
    }

    /// Whether `item` is included in level `level`'s substream.
    /// Level 0 contains every item; level `j` keeps items whose hash value is
    /// divisible by `2^j` (so the level-`j` inclusion probability is
    /// `2^{-j}`, and the subsets are nested).
    pub fn selected_at(&self, item: u64, level: usize) -> bool {
        if level == 0 {
            return true;
        }
        if level >= 64 {
            return false;
        }
        let h = self.selector.hash(item);
        h & ((1u64 << level) - 1) == 0
    }

    /// The deepest level that still includes `item`.
    pub fn deepest_level(&self, item: u64) -> usize {
        let h = self.selector.hash(item);
        (h.trailing_zeros() as usize).min(self.levels.len() - 1)
    }

    /// The per-level covers (useful for diagnostics and the ablation
    /// experiment E9).
    pub fn covers(&self) -> Vec<GCover> {
        self.levels.iter().map(|s| s.cover(self.domain)).collect()
    }

    /// Read access to the per-level sketches.
    pub fn level_sketches(&self) -> &[S] {
        &self.levels
    }

    /// Access the per-level sketches (e.g. to drive a two-pass algorithm's
    /// phase transition).
    pub fn levels_mut(&mut self) -> &mut [S] {
        &mut self.levels
    }

    /// Assemble the g-SUM estimate from the per-level covers.
    pub fn estimate(&self) -> f64 {
        let covers = self.covers();
        self.estimate_from_covers(&covers)
    }

    /// Assemble the estimate from externally produced covers (one per level).
    ///
    /// # Panics
    /// Panics if `covers.len()` differs from the number of levels.
    pub fn estimate_from_covers(&self, covers: &[GCover]) -> f64 {
        assert_eq!(covers.len(), self.levels.len(), "one cover per level");
        let top = covers.len() - 1;
        let mut estimate = covers[top].total_weight();
        for level in (0..top).rev() {
            let mut correction = 0.0;
            for (item, weight) in covers[level].iter() {
                let survives = self.selected_at(item, level + 1);
                correction += weight * (1.0 - 2.0 * f64::from(u8::from(survives)));
            }
            estimate = 2.0 * estimate + correction;
        }
        estimate
    }

    /// Total space across all levels, in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.levels.iter().map(|s| s.space_words()).sum::<usize>() + 4
    }

    /// Write the recursive-sketch checkpoint frame (header, domain, seed,
    /// level count) with each level serialized by `save_level` instead of
    /// its own [`Checkpoint::save`].
    ///
    /// This is the substitution point the serving registry uses to emit
    /// per-function checkpoints from one shared substrate: the frame and
    /// level order are exactly what [`Checkpoint::save`] writes, so a
    /// closure that saves each level with different function parameters
    /// produces bytes indistinguishable from a sketch built with that
    /// function.
    pub fn save_levels_with<W: Write>(
        &self,
        w: &mut W,
        mut save_level: impl FnMut(&S, &mut W) -> Result<(), CheckpointError>,
    ) -> Result<(), CheckpointError> {
        checkpoint::write_header(w, kind::RECURSIVE_SKETCH)?;
        checkpoint::write_u64(w, self.domain)?;
        checkpoint::write_u64(w, self.seed)?;
        checkpoint::write_len(w, self.levels.len())?;
        for level in &self.levels {
            save_level(level, w)?;
        }
        Ok(())
    }
}

impl<S: HeavyHitterSketch> StreamSink for RecursiveSketch<S> {
    /// Feed one update to every level whose substream includes the item —
    /// the incremental per-update subsampling of the recursive reduction.
    fn update(&mut self, update: Update) {
        let deepest = self.deepest_level(update.item);
        for level in &mut self.levels[..=deepest] {
            level.update(update);
        }
    }

    /// Route the batch level by level instead of update by update: each
    /// level receives, in one `update_batch` call, exactly the sub-batch its
    /// substream contains — in coalesced (item-sorted, deduplicated) form,
    /// which is exact for the linear level sketches [`HeavyHitterSketch`]
    /// requires — so the per-level sketches' fast paths engage across the
    /// whole batch instead of degrading to per-update dispatch here.
    ///
    /// One pass computes each distinct item's subsampling depth (the
    /// selector's pairwise polynomial is evaluated over the whole distinct-
    /// key slice with hoisted coefficients — [`KWiseHash::hash_many`], the
    /// batched hash kernel — once per batch, not once per level), and
    /// the levels peel the partition in place: level `j` consumes the
    /// current sub-batch, then entries too shallow for level `j+1` are
    /// compacted away.  The compaction preserves item order, so every level
    /// sees an already-coalesced slice and total routing work is the sum of
    /// the (geometrically shrinking) level sizes instead of levels × batch.
    fn update_batch(&mut self, updates: &[Update]) {
        if updates.len() <= 1 {
            for &u in updates {
                self.update(u);
            }
            return;
        }
        let top = self.levels.len() - 1;
        let RouteScratch {
            coalesce,
            keys,
            hashes,
            routed,
            depths,
        } = &mut self.scratch.buf;
        // Coalesce once, up front: the depth computation below then runs
        // over distinct items only, and the per-level sketches detect the
        // coalesced form and skip their own passes.
        let coalesced = gsum_streams::coalesce_into(updates, coalesce);
        // Level 0 sees every item.
        self.levels[0].update_batch(coalesced);
        if top == 0 {
            return;
        }
        // Batched selector evaluation: one hoisted-coefficient pass over the
        // distinct keys, bit-identical to per-key `selector.hash`.
        keys.clear();
        keys.extend(coalesced.iter().map(|u| u.item));
        self.selector.hash_many(keys, hashes);
        routed.clear();
        depths.clear();
        for (u, &h) in coalesced.iter().zip(hashes.iter()) {
            let d = (h.trailing_zeros() as usize).min(top);
            if d >= 1 {
                routed.push(*u);
                depths.push(d as u8);
            }
        }
        for j in 1..=top {
            if routed.is_empty() {
                // Deeper levels see nested subsets: nothing survives below.
                break;
            }
            self.levels[j].update_batch(routed);
            // Keep only the entries that survive to level j+1, in order.
            let keep = (j + 1) as u8;
            let mut write = 0usize;
            for read in 0..routed.len() {
                if depths[read] >= keep {
                    routed[write] = routed[read];
                    depths[write] = depths[read];
                    write += 1;
                }
            }
            routed.truncate(write);
            depths.truncate(write);
        }
    }
}

/// The recursive sketch of mergeable level sketches is itself mergeable:
/// matching seeds guarantee the subsampling selectors agree, and the levels
/// merge pairwise.
impl<S: HeavyHitterSketch + MergeableSketch> MergeableSketch for RecursiveSketch<S> {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.domain != other.domain
            || self.levels.len() != other.levels.len()
            || self.seed != other.seed
        {
            return Err(MergeError::new(
                "recursive-sketch merge requires identical domain, levels and seed",
            ));
        }
        for (mine, theirs) in self.levels.iter_mut().zip(other.levels.iter()) {
            mine.merge(theirs)?;
        }
        Ok(())
    }
}

/// A recursive sketch of checkpointable levels is itself checkpointable:
/// the subsampling selector re-derives from the master seed (the same
/// derivation [`RecursiveSketch::new`] uses), so the checkpoint is the
/// domain, the seed and the nested per-level checkpoints.
impl<S: HeavyHitterSketch + Checkpoint> Checkpoint for RecursiveSketch<S> {
    fn save(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        self.save_levels_with(w, |level, w| level.save(w))
    }

    fn restore(r: &mut impl Read) -> Result<Self, CheckpointError> {
        checkpoint::read_header(r, kind::RECURSIVE_SKETCH)?;
        let domain = checkpoint::read_u64(r)?;
        let seed = checkpoint::read_u64(r)?;
        let count = checkpoint::read_len(r)?;
        if domain == 0 || count == 0 {
            return Err(CheckpointError::Corrupt(
                "recursive sketch needs a positive domain and at least one level".into(),
            ));
        }
        let mut levels = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            levels.push(S::restore(r)?);
        }
        Ok(Self::assemble(domain, seed, levels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsum_streams::{
        StreamConfig, StreamGenerator, UniformStreamGenerator, ZipfStreamGenerator,
    };

    /// A heavy-hitter oracle that tracks everything exactly and reports every
    /// item as its cover.  With exact per-level covers the recursive
    /// estimator must reproduce the g-SUM (here g = x²) exactly, which pins
    /// down the combination formula.
    struct ExactOracle {
        counts: std::collections::HashMap<u64, i64>,
    }

    impl ExactOracle {
        fn new() -> Self {
            Self {
                counts: std::collections::HashMap::new(),
            }
        }
    }

    impl StreamSink for ExactOracle {
        fn update(&mut self, update: Update) {
            *self.counts.entry(update.item).or_insert(0) += update.delta;
        }
    }

    impl HeavyHitterSketch for ExactOracle {
        fn cover(&self, _domain: u64) -> GCover {
            GCover::from_pairs(
                self.counts
                    .iter()
                    .filter(|(_, &v)| v != 0)
                    .map(|(&i, &v)| (i, (v as f64) * (v as f64)))
                    .collect(),
            )
        }
        fn space_words(&self) -> usize {
            2 * self.counts.len()
        }
    }

    impl MergeableSketch for ExactOracle {
        fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
            for (&i, &v) in &other.counts {
                *self.counts.entry(i).or_insert(0) += v;
            }
            Ok(())
        }
    }

    /// An oracle that only reports the `k` largest-magnitude items of its own
    /// substream — exercises the "light mass is extrapolated from deeper
    /// levels" path (shallow levels cover only a fraction of their mass,
    /// deep levels are covered completely).
    struct TopKOracle {
        k: usize,
        counts: std::collections::HashMap<u64, i64>,
    }

    impl StreamSink for TopKOracle {
        fn update(&mut self, update: Update) {
            *self.counts.entry(update.item).or_insert(0) += update.delta;
        }
    }

    impl HeavyHitterSketch for TopKOracle {
        fn cover(&self, _domain: u64) -> GCover {
            let mut items: Vec<(u64, i64)> = self
                .counts
                .iter()
                .filter(|(_, &v)| v != 0)
                .map(|(&i, &v)| (i, v))
                .collect();
            items.sort_unstable_by_key(|&(_, v)| std::cmp::Reverse(v.abs()));
            items.truncate(self.k);
            GCover::from_pairs(
                items
                    .into_iter()
                    .map(|(i, v)| (i, (v as f64) * (v as f64)))
                    .collect(),
            )
        }
        fn space_words(&self) -> usize {
            2 * self.counts.len()
        }
    }

    #[test]
    fn exact_covers_give_exact_estimate() {
        let stream = ZipfStreamGenerator::new(StreamConfig::new(512, 20_000), 1.2, 3).generate();
        let truth: f64 = stream
            .frequency_vector()
            .iter()
            .map(|(_, v)| (v as f64) * (v as f64))
            .sum();
        let mut rs = RecursiveSketch::new(512, 10, 77, |_, _| ExactOracle::new());
        rs.process_stream(&stream);
        let est = rs.estimate();
        assert!(
            (est - truth).abs() < 1e-6 * truth,
            "estimate {est} should equal the truth {truth} with exact covers"
        );
    }

    #[test]
    fn selection_is_nested_and_halving() {
        let rs = RecursiveSketch::new(1 << 16, 12, 5, |_, _| ExactOracle::new());
        let n = 1u64 << 14;
        let mut prev_count = n;
        for level in 1..8usize {
            let count = (0..n).filter(|&i| rs.selected_at(i, level)).count() as u64;
            // Nested: every item at level j is at level j-1.
            for i in 0..n {
                if rs.selected_at(i, level) {
                    assert!(rs.selected_at(i, level - 1));
                }
            }
            // Roughly halving.
            let expect = n as f64 / 2f64.powi(level as i32);
            assert!(
                (count as f64 - expect).abs() < 0.25 * expect + 20.0,
                "level {level}: {count} selected, expected about {expect}"
            );
            assert!(count <= prev_count);
            prev_count = count;
        }
        // Level 0 includes everything.
        assert!((0..100u64).all(|i| rs.selected_at(i, 0)));
    }

    #[test]
    fn partial_covers_still_track_the_sum() {
        // With only the top-k items of each substream covered, individual
        // estimates are noisy but the median over independent seeds
        // concentrates around the truth (the content of Theorem 13).
        let stream = UniformStreamGenerator::new(StreamConfig::new(1 << 10, 40_000), 11).generate();
        let truth: f64 = stream
            .frequency_vector()
            .iter()
            .map(|(_, v)| (v as f64) * (v as f64))
            .sum();
        let trials = 9;
        let mut estimates: Vec<f64> = Vec::new();
        for seed in 0..trials {
            let mut rs = RecursiveSketch::new(1 << 10, 11, seed * 13 + 1, |_, _| TopKOracle {
                k: 16,
                counts: std::collections::HashMap::new(),
            });
            rs.process_stream(&stream);
            estimates.push(rs.estimate());
        }
        estimates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = estimates[trials as usize / 2];
        let rel = (median - truth).abs() / truth;
        assert!(
            rel < 0.35,
            "median estimate {median} too far from truth {truth} (rel {rel})"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = ZipfStreamGenerator::new(StreamConfig::new(256, 5_000), 1.1, 9).generate();
        let run = |seed| {
            let mut rs = RecursiveSketch::new(256, 9, seed, |_, _| ExactOracle::new());
            rs.process_stream(&stream);
            rs.estimate()
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn covers_and_space_accessors() {
        let mut rs = RecursiveSketch::new(64, 4, 0, |_, _| ExactOracle::new());
        rs.update(Update::new(3, 5));
        assert_eq!(rs.covers().len(), 4);
        assert_eq!(rs.levels(), 4);
        assert_eq!(rs.domain(), 64);
        assert!(rs.space_words() >= 4);
        assert!(rs.deepest_level(3) < 4);
    }

    #[test]
    fn merged_halves_estimate_like_the_whole() {
        let stream = ZipfStreamGenerator::new(StreamConfig::new(256, 8_000), 1.2, 5).generate();
        let build = || RecursiveSketch::new(256, 8, 21, |_, _| ExactOracle::new());

        let mut whole = build();
        whole.process_stream(&stream);

        let (front, back) = stream.updates().split_at(stream.len() / 2);
        let mut a = build();
        a.update_batch(front);
        let mut b = build();
        b.update_batch(back);
        a.merge(&b).unwrap();

        assert_eq!(a.estimate(), whole.estimate());
    }

    #[test]
    fn merge_rejects_mismatched_seed() {
        let mut a = RecursiveSketch::new(64, 4, 1, |_, _| ExactOracle::new());
        let b = RecursiveSketch::new(64, 4, 2, |_, _| ExactOracle::new());
        assert!(a.merge(&b).is_err());
        let c = RecursiveSketch::new(32, 4, 1, |_, _| ExactOracle::new());
        assert!(a.merge(&c).is_err());
    }

    #[test]
    #[should_panic(expected = "one cover per level")]
    fn estimate_from_covers_checks_length() {
        let rs = RecursiveSketch::new(64, 4, 0, |_, _| ExactOracle::new());
        let _ = rs.estimate_from_covers(&[GCover::new()]);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        let _ = RecursiveSketch::new(64, 0, 0, |_, _| ExactOracle::new());
    }
}
