//! The Recursive Sketch of Braverman and Ostrovsky (Theorem 13).
//!
//! The reduction from g-SUM to heavy hitters works by subsampling: level `j`
//! of the sketch sees each item independently-ish with probability `2^{-j}`
//! (nested subsets drawn from one pairwise-independent hash).  Each level
//! runs a `(g, λ, ε, δ)`-heavy-hitter algorithm on its substream.  Writing
//! `cover_j` for level `j`'s cover and `sel_{j+1}(i)` for the indicator that
//! item `i` survives to level `j+1`, the estimator is assembled bottom-up:
//!
//! ```text
//! Y_L = Σ_{(i,w) ∈ cover_L} w
//! Y_j = 2·Y_{j+1} + Σ_{(i,w) ∈ cover_j} w · (1 − 2·sel_{j+1}(i))
//! ```
//!
//! and `Y_0` is the g-SUM estimate.  Intuitively, the items too light to be
//! caught at level `j` have their mass estimated by doubling the next level's
//! estimate, while the heavy items (whose sampling noise would dominate) are
//! accounted for exactly by their covers.  The paper uses this reduction with
//! heaviness `λ = ε²/log³ n`, giving an `O(log n)` space overhead over the
//! heavy-hitter routine (Theorem 13).

use crate::heavy_hitters::{GCover, HeavyHitterSketch};
use gsum_hash::KWiseHash;
use gsum_streams::{TurnstileStream, Update};

/// The recursive g-SUM estimator, generic over the per-level heavy-hitter
/// sketch.
#[derive(Debug, Clone)]
pub struct RecursiveSketch<S> {
    domain: u64,
    levels: Vec<S>,
    selector: KWiseHash,
}

impl<S: HeavyHitterSketch> RecursiveSketch<S> {
    /// Create a recursive sketch with `levels` levels over `[0, domain)`.
    /// The `factory` builds the heavy-hitter sketch for each level (it
    /// receives the level index and a derived seed).
    ///
    /// # Panics
    /// Panics if `levels == 0` or `domain == 0`.
    pub fn new(
        domain: u64,
        levels: usize,
        seed: u64,
        mut factory: impl FnMut(usize, u64) -> S,
    ) -> Self {
        assert!(levels >= 1, "need at least one level");
        assert!(domain > 0, "domain must be positive");
        let seeds = gsum_hash::derive_seeds(seed, levels + 1);
        let level_sketches = (0..levels).map(|j| factory(j, seeds[j])).collect();
        Self {
            domain,
            levels: level_sketches,
            selector: KWiseHash::new(2, seeds[levels]),
        }
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// The domain size.
    pub fn domain(&self) -> u64 {
        self.domain
    }

    /// Whether `item` is included in level `level`'s substream.
    /// Level 0 contains every item; level `j` keeps items whose hash value is
    /// divisible by `2^j` (so the level-`j` inclusion probability is
    /// `2^{-j}`, and the subsets are nested).
    pub fn selected_at(&self, item: u64, level: usize) -> bool {
        if level == 0 {
            return true;
        }
        if level >= 64 {
            return false;
        }
        let h = self.selector.hash(item);
        h & ((1u64 << level) - 1) == 0
    }

    /// The deepest level that still includes `item`.
    pub fn deepest_level(&self, item: u64) -> usize {
        let h = self.selector.hash(item);
        (h.trailing_zeros() as usize).min(self.levels.len() - 1)
    }

    /// Feed one update to every level whose substream includes the item.
    pub fn update(&mut self, update: Update) {
        let deepest = self.deepest_level(update.item);
        for level in 0..=deepest {
            self.levels[level].update(update);
        }
    }

    /// Process an entire stream.
    pub fn process_stream(&mut self, stream: &TurnstileStream) {
        for &u in stream.iter() {
            self.update(u);
        }
    }

    /// The per-level covers (useful for diagnostics and the ablation
    /// experiment E9).
    pub fn covers(&self) -> Vec<GCover> {
        self.levels.iter().map(|s| s.cover(self.domain)).collect()
    }

    /// Access the per-level sketches (e.g. to drive a two-pass algorithm's
    /// phase transition).
    pub fn levels_mut(&mut self) -> &mut [S] {
        &mut self.levels
    }

    /// Assemble the g-SUM estimate from the per-level covers.
    pub fn estimate(&self) -> f64 {
        let covers = self.covers();
        self.estimate_from_covers(&covers)
    }

    /// Assemble the estimate from externally produced covers (one per level).
    ///
    /// # Panics
    /// Panics if `covers.len()` differs from the number of levels.
    pub fn estimate_from_covers(&self, covers: &[GCover]) -> f64 {
        assert_eq!(covers.len(), self.levels.len(), "one cover per level");
        let top = covers.len() - 1;
        let mut estimate = covers[top].total_weight();
        for level in (0..top).rev() {
            let mut correction = 0.0;
            for (item, weight) in covers[level].iter() {
                let survives = self.selected_at(item, level + 1);
                correction += weight * (1.0 - 2.0 * f64::from(u8::from(survives)));
            }
            estimate = 2.0 * estimate + correction;
        }
        estimate
    }

    /// Total space across all levels, in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.levels.iter().map(|s| s.space_words()).sum::<usize>() + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsum_streams::{StreamConfig, StreamGenerator, UniformStreamGenerator, ZipfStreamGenerator};

    /// A heavy-hitter oracle that tracks everything exactly and reports every
    /// item as its cover.  With exact per-level covers the recursive
    /// estimator must reproduce the g-SUM (here g = x²) exactly, which pins
    /// down the combination formula.
    struct ExactOracle {
        counts: std::collections::HashMap<u64, i64>,
    }

    impl ExactOracle {
        fn new() -> Self {
            Self {
                counts: std::collections::HashMap::new(),
            }
        }
    }

    impl HeavyHitterSketch for ExactOracle {
        fn update(&mut self, update: Update) {
            *self.counts.entry(update.item).or_insert(0) += update.delta;
        }
        fn cover(&self, _domain: u64) -> GCover {
            GCover::from_pairs(
                self.counts
                    .iter()
                    .filter(|(_, &v)| v != 0)
                    .map(|(&i, &v)| (i, (v as f64) * (v as f64)))
                    .collect(),
            )
        }
        fn space_words(&self) -> usize {
            2 * self.counts.len()
        }
    }

    /// An oracle that only reports the `k` largest-magnitude items of its own
    /// substream — exercises the "light mass is extrapolated from deeper
    /// levels" path (shallow levels cover only a fraction of their mass,
    /// deep levels are covered completely).
    struct TopKOracle {
        k: usize,
        counts: std::collections::HashMap<u64, i64>,
    }

    impl HeavyHitterSketch for TopKOracle {
        fn update(&mut self, update: Update) {
            *self.counts.entry(update.item).or_insert(0) += update.delta;
        }
        fn cover(&self, _domain: u64) -> GCover {
            let mut items: Vec<(u64, i64)> = self
                .counts
                .iter()
                .filter(|(_, &v)| v != 0)
                .map(|(&i, &v)| (i, v))
                .collect();
            items.sort_unstable_by_key(|&(_, v)| std::cmp::Reverse(v.abs()));
            items.truncate(self.k);
            GCover::from_pairs(
                items
                    .into_iter()
                    .map(|(i, v)| (i, (v as f64) * (v as f64)))
                    .collect(),
            )
        }
        fn space_words(&self) -> usize {
            2 * self.counts.len()
        }
    }

    #[test]
    fn exact_covers_give_exact_estimate() {
        let stream = ZipfStreamGenerator::new(StreamConfig::new(512, 20_000), 1.2, 3).generate();
        let truth: f64 = stream
            .frequency_vector()
            .iter()
            .map(|(_, v)| (v as f64) * (v as f64))
            .sum();
        let mut rs = RecursiveSketch::new(512, 10, 77, |_, _| ExactOracle::new());
        rs.process_stream(&stream);
        let est = rs.estimate();
        assert!(
            (est - truth).abs() < 1e-6 * truth,
            "estimate {est} should equal the truth {truth} with exact covers"
        );
    }

    #[test]
    fn selection_is_nested_and_halving() {
        let rs = RecursiveSketch::new(1 << 16, 12, 5, |_, _| ExactOracle::new());
        let n = 1u64 << 14;
        let mut prev_count = n;
        for level in 1..8usize {
            let count = (0..n).filter(|&i| rs.selected_at(i, level)).count() as u64;
            // Nested: every item at level j is at level j-1.
            for i in 0..n {
                if rs.selected_at(i, level) {
                    assert!(rs.selected_at(i, level - 1));
                }
            }
            // Roughly halving.
            let expect = n as f64 / 2f64.powi(level as i32);
            assert!(
                (count as f64 - expect).abs() < 0.25 * expect + 20.0,
                "level {level}: {count} selected, expected about {expect}"
            );
            assert!(count <= prev_count);
            prev_count = count;
        }
        // Level 0 includes everything.
        assert!((0..100u64).all(|i| rs.selected_at(i, 0)));
    }

    #[test]
    fn partial_covers_still_track_the_sum() {
        // With only the top-k items of each substream covered, individual
        // estimates are noisy but the median over independent seeds
        // concentrates around the truth (the content of Theorem 13).
        let stream =
            UniformStreamGenerator::new(StreamConfig::new(1 << 10, 40_000), 11).generate();
        let truth: f64 = stream
            .frequency_vector()
            .iter()
            .map(|(_, v)| (v as f64) * (v as f64))
            .sum();
        let trials = 9;
        let mut estimates: Vec<f64> = Vec::new();
        for seed in 0..trials {
            let mut rs = RecursiveSketch::new(1 << 10, 11, seed * 13 + 1, |_, _| TopKOracle {
                k: 16,
                counts: std::collections::HashMap::new(),
            });
            rs.process_stream(&stream);
            estimates.push(rs.estimate());
        }
        estimates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = estimates[trials as usize / 2];
        let rel = (median - truth).abs() / truth;
        assert!(
            rel < 0.35,
            "median estimate {median} too far from truth {truth} (rel {rel})"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = ZipfStreamGenerator::new(StreamConfig::new(256, 5_000), 1.1, 9).generate();
        let run = |seed| {
            let mut rs = RecursiveSketch::new(256, 9, seed, |_, _| ExactOracle::new());
            rs.process_stream(&stream);
            rs.estimate()
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn covers_and_space_accessors() {
        let mut rs = RecursiveSketch::new(64, 4, 0, |_, _| ExactOracle::new());
        rs.update(Update::new(3, 5));
        assert_eq!(rs.covers().len(), 4);
        assert_eq!(rs.levels(), 4);
        assert_eq!(rs.domain(), 64);
        assert!(rs.space_words() >= 4);
        assert!(rs.deepest_level(3) < 4);
    }

    #[test]
    #[should_panic(expected = "one cover per level")]
    fn estimate_from_covers_checks_length() {
        let rs = RecursiveSketch::new(64, 4, 0, |_, _| ExactOracle::new());
        let _ = rs.estimate_from_covers(&[GCover::new()]);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        let _ = RecursiveSketch::new(64, 0, 0, |_, _| ExactOracle::new());
    }
}
