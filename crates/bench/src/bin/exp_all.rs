//! Run the full experiment suite (E1–E10) and print every table as Markdown.
//!
//! ```text
//! cargo run --release -p gsum-bench --bin exp_all            # all experiments
//! cargo run --release -p gsum-bench --bin exp_all -- E4 E6   # a subset
//! ```
//!
//! The output of this binary is what `EXPERIMENTS.md` records.

fn main() {
    let filters: Vec<String> = std::env::args().skip(1).map(|s| s.to_uppercase()).collect();
    for table in gsum_bench::run_all() {
        if filters.is_empty() || filters.iter().any(|f| f == &table.id) {
            println!("{}", table.to_markdown());
        }
    }
}
