//! Experiment E3 table emitter (see EXPERIMENTS.md). Prints Markdown to stdout.

fn main() {
    println!("{}", gsum_bench::e3_two_pass_separation(3).to_markdown());
}
