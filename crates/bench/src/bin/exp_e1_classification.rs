//! Experiment E1 table emitter (see EXPERIMENTS.md). Prints Markdown to stdout.

fn main() {
    println!(
        "{}",
        gsum_bench::e1_classification(&gsum_gfunc::PropertyConfig::default()).to_markdown()
    );
}
