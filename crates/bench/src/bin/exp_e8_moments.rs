//! Experiment E8 table emitter (see EXPERIMENTS.md). Prints Markdown to stdout.

fn main() {
    println!(
        "{}",
        gsum_bench::e8_moments(1 << 10, 30_000, 3).to_markdown()
    );
}
