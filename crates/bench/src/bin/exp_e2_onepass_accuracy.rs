//! Experiment E2 table emitter (see EXPERIMENTS.md). Prints Markdown to stdout.

fn main() {
    println!(
        "{}",
        gsum_bench::e2_one_pass_accuracy(1 << 10, 30_000, 3).to_markdown()
    );
}
