//! Experiment E9 table emitter (see EXPERIMENTS.md). Prints Markdown to stdout.

fn main() {
    println!(
        "{}",
        gsum_bench::e9_recursive_ablation(1 << 10, 30_000, 3).to_markdown()
    );
}
