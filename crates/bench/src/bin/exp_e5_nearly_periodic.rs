//! Experiment E5 table emitter (see EXPERIMENTS.md). Prints Markdown to stdout.

fn main() {
    println!("{}", gsum_bench::e5_nearly_periodic(5).to_markdown());
}
