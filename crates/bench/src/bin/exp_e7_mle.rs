//! Experiment E7 table emitter (see EXPERIMENTS.md). Prints Markdown to stdout.

fn main() {
    println!("{}", gsum_bench::e7_mle(2_000, 3).to_markdown());
}
