//! Experiment E4 table emitter (see EXPERIMENTS.md). Prints Markdown to stdout.

fn main() {
    println!("{}", gsum_bench::e4_lower_bounds(20).to_markdown());
}
