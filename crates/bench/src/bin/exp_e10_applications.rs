//! Experiment E10 table emitter (see EXPERIMENTS.md). Prints Markdown to stdout.

fn main() {
    println!("{}", gsum_bench::e10_applications(3).to_markdown());
}
