//! CI gate: validate committed bench artifacts against their schemas.
//!
//! The throughput benches write machine-readable artifacts that CI uploads
//! per PR; the whole point of those trajectories is comparability, so schema
//! drift (a dropped `meta` block, a result missing its `mode`/`backend`
//! fields, a NaN that corrupts the numbers) must fail the build rather than
//! ship a silently unusable artifact.  This binary parses the JSON with the
//! in-tree parser (no external deps) and dispatches on the top-level
//! `bench` field.
//!
//! For `bench_ingest` (schema v6) it checks:
//!
//! * top level: `schema_version == 6`, a `workload` object, finite positive
//!   `speedup_*` summary fields (including
//!   `speedup_gsum_coalesced_vs_per_update`, new in v4 — the
//!   recursive-sketch hot path is the number the perf trajectory is about —
//!   and `speedup_gsum_round4_vs_round3`, new in v6: the headline
//!   `onepass_gsum/coalesced_full/polynomial` rate against the committed
//!   round-3 artifact's, so the round-over-round claim is a checked number
//!   in the artifact rather than prose);
//! * `meta`: non-empty `git_commit`, non-empty `backends` and
//!   `coalescing_modes` string arrays, a `default_backend` contained in
//!   `backends`, an integral `available_parallelism ≥ 1` (new in v3 —
//!   sharded/pipelined numbers are uninterpretable without the host's
//!   hardware-thread count), boolean `quick`;
//! * `results`: non-empty; every entry carries `name` (shaped
//!   `family/mode/backend`), `mode` and `backend` fields that agree with the
//!   name and with the `meta` lists, finite positive `ns_per_iter` /
//!   `updates_per_sec`, and an integral `iterations ≥ 1`;
//! * required rows: the `onepass_gsum` whole-batch and parallel variants
//!   across *both* hash backends, the countsketch `hash_stage` /
//!   `apply_stage` stage-split rows and the `coalesced_full` rows they
//!   decompose (v5), plus (new in v6) the `ams/eval_stage/{family}` rows
//!   for both sign families ([`REQUIRED_RESULTS`]) — so neither the
//!   headline estimator's ingestion numbers nor the stage-attribution rows
//!   can silently drop out of the artifact;
//! * stage-split sanity (new in v5): per backend, `hash_stage` plus
//!   `apply_stage` ns/iter must not exceed the `coalesced_full` row (plus a
//!   small timer-noise tolerance) — the whole pipeline also pays the
//!   coalescing sort the stage rows skip, so a sum above the total means
//!   the rows measure different workloads and the attribution is wrong;
//! * AMS stage sanity (new in v6): `ams/eval_stage/polynomial4` ns/iter
//!   must not exceed the `onepass_gsum/coalesced_full/polynomial` row (plus
//!   the same tolerance) — the full pipeline pays at least one pass of that
//!   sign bank over the coalesced keys, so an eval-stage row above the
//!   whole-pipeline row means the rows measure different workloads.
//!
//! For `bench_serve` (schema v2) it checks:
//!
//! * top level: `schema_version == 2` and a `workload` object;
//! * `meta`: non-empty `git_commit`, integral `workers ≥ 1` and
//!   `max_connections ≥ 1` (the reactor knobs the numbers were taken
//!   under), non-empty `policy`, a `functions` string array with at least
//!   two entries (new in v2 — the bench serves a multi-function estimator
//!   registry, and the per-function rows are unreadable without the
//!   names), integral `available_parallelism ≥ 1`, boolean `quick`;
//! * `results`: non-empty; every row carries a non-empty `name` and `unit`,
//!   a `kind` that is `"throughput"` or `"latency"`, a finite positive
//!   `value`, and an integral `samples ≥ 1`;
//! * required rows ([`REQUIRED_SERVE_RESULTS`]): connections/sec, the
//!   concurrent-ingest throughput row, and the p99 `EST`/`COUNT` latency
//!   rows — plus (new in v2) a `serve/est_latency_p99/<function>` row for
//!   every name in `meta.functions`, so the named-estimator path can
//!   never silently drop out of the artifact;
//! * every `*_latency_p50*` row's value must not exceed its `p99`
//!   counterpart, including the per-function pairs (a swapped pair is the
//!   easiest way to ship a wrong artifact that still parses).
//!
//! Usage: `check_bench_schema [path]` (default: `$BENCH_INGEST_JSON`, then
//! `./BENCH_ingest.json`).  Exits non-zero listing every violation.

use gsum_bench::json::{parse_json, JsonValue};
use std::path::PathBuf;
use std::process::ExitCode;

/// The `bench_ingest` schema version this gate understands.
const EXPECTED_SCHEMA_VERSION: f64 = 6.0;

/// The `bench_serve` schema version this gate understands.
const EXPECTED_SERVE_SCHEMA_VERSION: f64 = 2.0;

/// Result rows that must be present in a v6 artifact: the recursive-sketch
/// hot-path variants across both hash backends, the countsketch
/// stage-split rows and the `coalesced_full` totals they decompose, and
/// the AMS sign-kernel rows for both sign families.
const REQUIRED_RESULTS: [&str; 14] = [
    "ams/eval_stage/polynomial4",
    "ams/eval_stage/tabulation",
    "onepass_gsum/coalesced_full/polynomial",
    "onepass_gsum/coalesced_full/tabulation",
    "onepass_gsum/sharded_2/polynomial",
    "onepass_gsum/sharded_2/tabulation",
    "onepass_gsum/pipelined_2/polynomial",
    "onepass_gsum/pipelined_2/tabulation",
    "countsketch/coalesced_full/polynomial",
    "countsketch/coalesced_full/tabulation",
    "countsketch/hash_stage/polynomial",
    "countsketch/hash_stage/tabulation",
    "countsketch/apply_stage/polynomial",
    "countsketch/apply_stage/tabulation",
];

/// Timer-noise headroom for the stage-split sanity rule: the stage rows and
/// the whole-pipeline row are measured independently, so their means can
/// jitter a few percent on a loaded CI host even though the inequality
/// holds in expectation (the whole pipeline additionally pays the
/// coalescing sort).
const STAGE_SUM_TOLERANCE: f64 = 1.05;

/// Result rows that must be present in a serve v2 artifact: the headline
/// reactor serving numbers.  Per-function `EST` latency rows are required
/// on top of these, one `serve/est_latency_p99/<function>` row per name in
/// `meta.functions`.
const REQUIRED_SERVE_RESULTS: [&str; 4] = [
    "serve/connections_per_sec",
    "serve/ingest_updates_per_sec/clients_4",
    "serve/est_latency_p99",
    "serve/count_latency_p99",
];

struct Violations(Vec<String>);

impl Violations {
    fn push(&mut self, v: impl Into<String>) {
        self.0.push(v.into());
    }
}

fn str_field<'a>(
    obj: &'a JsonValue,
    key: &str,
    where_: &str,
    out: &mut Violations,
) -> Option<&'a str> {
    match obj.get(key).and_then(JsonValue::as_str) {
        Some(s) if !s.is_empty() => Some(s),
        Some(_) => {
            out.push(format!("{where_}: \"{key}\" is empty"));
            None
        }
        None => {
            out.push(format!("{where_}: missing string field \"{key}\""));
            None
        }
    }
}

fn positive_number(obj: &JsonValue, key: &str, where_: &str, out: &mut Violations) -> Option<f64> {
    match obj.get(key).and_then(JsonValue::as_f64) {
        Some(n) if n.is_finite() && n > 0.0 => Some(n),
        Some(n) => {
            out.push(format!(
                "{where_}: \"{key}\" must be finite and > 0, got {n}"
            ));
            None
        }
        None => {
            out.push(format!("{where_}: missing numeric field \"{key}\""));
            None
        }
    }
}

fn string_list(obj: &JsonValue, key: &str, where_: &str, out: &mut Violations) -> Vec<String> {
    let Some(items) = obj.get(key).and_then(JsonValue::as_array) else {
        out.push(format!("{where_}: missing array field \"{key}\""));
        return Vec::new();
    };
    if items.is_empty() {
        out.push(format!("{where_}: \"{key}\" must not be empty"));
    }
    items
        .iter()
        .enumerate()
        .filter_map(|(i, v)| match v.as_str() {
            Some(s) => Some(s.to_string()),
            None => {
                out.push(format!("{where_}: \"{key}\"[{i}] is not a string"));
                None
            }
        })
        .collect()
}

fn check_meta(root: &JsonValue, out: &mut Violations) -> (Vec<String>, Vec<String>) {
    let Some(meta) = root.get("meta") else {
        out.push("missing \"meta\" provenance block (required since schema v2)");
        return (Vec::new(), Vec::new());
    };
    if !matches!(meta, JsonValue::Object(_)) {
        out.push("\"meta\" is not an object");
        return (Vec::new(), Vec::new());
    }
    str_field(meta, "git_commit", "meta", out);
    let backends = string_list(meta, "backends", "meta", out);
    let modes = string_list(meta, "coalescing_modes", "meta", out);
    if let Some(default) = str_field(meta, "default_backend", "meta", out) {
        if !backends.is_empty() && !backends.iter().any(|b| b == default) {
            out.push(format!(
                "meta: default_backend {default:?} is not in backends {backends:?}"
            ));
        }
    }
    if meta.get("quick").and_then(JsonValue::as_bool).is_none() {
        out.push("meta: missing boolean field \"quick\"");
    }
    match meta
        .get("available_parallelism")
        .and_then(JsonValue::as_f64)
    {
        Some(n) if n >= 1.0 && n.fract() == 0.0 => {}
        Some(n) => out.push(format!(
            "meta: available_parallelism must be an integer ≥ 1, got {n}"
        )),
        None => {
            out.push("meta: missing numeric field \"available_parallelism\" (required since v3)")
        }
    }
    (backends, modes)
}

fn check_result(
    result: &JsonValue,
    index: usize,
    backends: &[String],
    modes: &[String],
    out: &mut Violations,
) {
    let where_ = format!("results[{index}]");
    let name = str_field(result, "name", &where_, out);
    let mode = str_field(result, "mode", &where_, out);
    let backend = str_field(result, "backend", &where_, out);

    if let Some(name) = name {
        let parts: Vec<&str> = name.split('/').collect();
        if parts.len() != 3 || parts.iter().any(|p| p.is_empty()) {
            out.push(format!(
                "{where_}: name {name:?} is not shaped family/mode/backend"
            ));
        } else {
            if let Some(mode) = mode {
                if mode != parts[1] {
                    out.push(format!(
                        "{where_}: mode {mode:?} disagrees with name {name:?}"
                    ));
                }
            }
            if let Some(backend) = backend {
                if backend != parts[2] {
                    out.push(format!(
                        "{where_}: backend {backend:?} disagrees with name {name:?}"
                    ));
                }
            }
        }
    }
    if let Some(mode) = mode {
        if !modes.is_empty() && !modes.iter().any(|m| m == mode) {
            out.push(format!(
                "{where_}: mode {mode:?} is not in meta.coalescing_modes"
            ));
        }
    }
    if let Some(backend) = backend {
        if !backends.is_empty() && !backends.iter().any(|b| b == backend) {
            out.push(format!(
                "{where_}: backend {backend:?} is not in meta.backends"
            ));
        }
    }
    positive_number(result, "ns_per_iter", &where_, out);
    positive_number(result, "updates_per_sec", &where_, out);
    match result.get("iterations").and_then(JsonValue::as_f64) {
        Some(n) if n >= 1.0 && n.fract() == 0.0 => {}
        Some(n) => out.push(format!(
            "{where_}: iterations must be an integer ≥ 1, got {n}"
        )),
        None => out.push(format!("{where_}: missing numeric field \"iterations\"")),
    }
}

/// Check that `obj[key]` is an integral number ≥ 1 (counts serialized
/// through the float-only JSON number type).
fn integral_count(obj: &JsonValue, key: &str, where_: &str, out: &mut Violations) {
    match obj.get(key).and_then(JsonValue::as_f64) {
        Some(n) if n >= 1.0 && n.fract() == 0.0 => {}
        Some(n) => out.push(format!(
            "{where_}: \"{key}\" must be an integer ≥ 1, got {n}"
        )),
        None => out.push(format!("{where_}: missing numeric field \"{key}\"")),
    }
}

fn validate_ingest(root: &JsonValue) -> Violations {
    let mut out = Violations(Vec::new());

    match root.get("schema_version").and_then(JsonValue::as_f64) {
        Some(v) if v == EXPECTED_SCHEMA_VERSION => {}
        Some(v) => out.push(format!(
            "schema_version is {v}, this gate validates v{EXPECTED_SCHEMA_VERSION}"
        )),
        None => out.push("missing numeric field \"schema_version\""),
    }
    if !matches!(root.get("workload"), Some(JsonValue::Object(_))) {
        out.push("missing \"workload\" object");
    }
    positive_number(
        root,
        "speedup_coalesced_vs_per_update",
        "top level",
        &mut out,
    );
    positive_number(
        root,
        "speedup_tabulation_vs_polynomial_per_update",
        "top level",
        &mut out,
    );
    positive_number(
        root,
        "speedup_gsum_coalesced_vs_per_update",
        "top level",
        &mut out,
    );
    positive_number(root, "speedup_gsum_round4_vs_round3", "top level", &mut out);

    let (backends, modes) = check_meta(root, &mut out);

    match root.get("results").and_then(JsonValue::as_array) {
        Some([]) => out.push("\"results\" must not be empty"),
        Some(results) => {
            for (i, result) in results.iter().enumerate() {
                check_result(result, i, &backends, &modes, &mut out);
            }
            for required in REQUIRED_RESULTS {
                let present = results
                    .iter()
                    .any(|r| r.get("name").and_then(JsonValue::as_str) == Some(required));
                if !present {
                    out.push(format!(
                        "results: required row {required:?} is missing (required since v5)"
                    ));
                }
            }
            let ns_of = |name: &str| {
                results
                    .iter()
                    .find(|r| r.get("name").and_then(JsonValue::as_str) == Some(name))
                    .and_then(|r| r.get("ns_per_iter"))
                    .and_then(JsonValue::as_f64)
            };
            for backend in ["polynomial", "tabulation"] {
                let hash = ns_of(&format!("countsketch/hash_stage/{backend}"));
                let apply = ns_of(&format!("countsketch/apply_stage/{backend}"));
                let total = ns_of(&format!("countsketch/coalesced_full/{backend}"));
                if let (Some(hash), Some(apply), Some(total)) = (hash, apply, total) {
                    if hash + apply > total * STAGE_SUM_TOLERANCE {
                        out.push(format!(
                            "results: {backend} hash_stage + apply_stage ({:.1} ns) exceeds \
                             coalesced_full ({total:.1} ns) — stage rows must decompose the \
                             whole-pipeline row",
                            hash + apply
                        ));
                    }
                }
            }
            // The onepass_gsum pipeline pays at least one pass of the
            // default (polynomial4) AMS sign bank over the coalesced keys,
            // so the isolated eval-stage row must sit below the
            // whole-pipeline row.  The tabulation-family row has no full
            // counterpart (the full rows sweep the *hash* backend, the
            // sign family stays at its default), so only presence and
            // finiteness apply to it.
            if let (Some(eval), Some(total)) = (
                ns_of("ams/eval_stage/polynomial4"),
                ns_of("onepass_gsum/coalesced_full/polynomial"),
            ) {
                if eval > total * STAGE_SUM_TOLERANCE {
                    out.push(format!(
                        "results: ams/eval_stage/polynomial4 ({eval:.1} ns) exceeds \
                         onepass_gsum/coalesced_full/polynomial ({total:.1} ns) — the \
                         isolated sign-kernel row must bound the whole-pipeline row \
                         from below"
                    ));
                }
            }
        }
        None => out.push("missing \"results\" array"),
    }
    out
}

fn check_serve_result(result: &JsonValue, index: usize, out: &mut Violations) {
    let where_ = format!("results[{index}]");
    str_field(result, "name", &where_, out);
    str_field(result, "unit", &where_, out);
    match str_field(result, "kind", &where_, out) {
        Some("throughput" | "latency") | None => {}
        Some(kind) => out.push(format!(
            "{where_}: kind {kind:?} is not \"throughput\" or \"latency\""
        )),
    }
    positive_number(result, "value", &where_, out);
    integral_count(result, "samples", &where_, out);
}

fn validate_serve(root: &JsonValue) -> Violations {
    let mut out = Violations(Vec::new());

    match root.get("schema_version").and_then(JsonValue::as_f64) {
        Some(v) if v == EXPECTED_SERVE_SCHEMA_VERSION => {}
        Some(v) => out.push(format!(
            "schema_version is {v}, this gate validates serve v{EXPECTED_SERVE_SCHEMA_VERSION}"
        )),
        None => out.push("missing numeric field \"schema_version\""),
    }
    if !matches!(root.get("workload"), Some(JsonValue::Object(_))) {
        out.push("missing \"workload\" object");
    }

    let mut functions = Vec::new();
    match root.get("meta") {
        Some(meta @ JsonValue::Object(_)) => {
            str_field(meta, "git_commit", "meta", &mut out);
            str_field(meta, "policy", "meta", &mut out);
            integral_count(meta, "workers", "meta", &mut out);
            integral_count(meta, "max_connections", "meta", &mut out);
            integral_count(meta, "available_parallelism", "meta", &mut out);
            if meta.get("quick").and_then(JsonValue::as_bool).is_none() {
                out.push("meta: missing boolean field \"quick\"");
            }
            functions = string_list(meta, "functions", "meta", &mut out);
            if functions.len() == 1 {
                out.push(
                    "meta: \"functions\" must list at least two registered estimators \
                     (required since serve v2)",
                );
            }
        }
        Some(_) => out.push("\"meta\" is not an object"),
        None => out.push("missing \"meta\" provenance block"),
    }

    match root.get("results").and_then(JsonValue::as_array) {
        Some([]) => out.push("\"results\" must not be empty"),
        Some(results) => {
            for (i, result) in results.iter().enumerate() {
                check_serve_result(result, i, &mut out);
            }
            let value_of = |name: &str| {
                results
                    .iter()
                    .find(|r| r.get("name").and_then(JsonValue::as_str) == Some(name))
                    .and_then(|r| r.get("value"))
                    .and_then(JsonValue::as_f64)
            };
            for required in REQUIRED_SERVE_RESULTS {
                if value_of(required).is_none() {
                    out.push(format!("results: required row {required:?} is missing"));
                }
            }
            for function in &functions {
                let required = format!("serve/est_latency_p99/{function}");
                if value_of(&required).is_none() {
                    out.push(format!(
                        "results: required per-function row {required:?} is missing \
                         (required since serve v2)"
                    ));
                }
            }
            // Every p50 row — the bare families and the per-function ones
            // alike — must not exceed its p99 counterpart.
            for result in results {
                let Some(name) = result.get("name").and_then(JsonValue::as_str) else {
                    continue;
                };
                if !name.contains("_latency_p50") {
                    continue;
                }
                let counterpart = name.replacen("_latency_p50", "_latency_p99", 1);
                if let (Some(p50), Some(p99)) = (
                    result.get("value").and_then(JsonValue::as_f64),
                    value_of(&counterpart),
                ) {
                    if p50 > p99 {
                        out.push(format!(
                            "results: {name} ({p50}) exceeds {counterpart} ({p99})"
                        ));
                    }
                }
            }
        }
        None => out.push("missing \"results\" array"),
    }
    out
}

fn validate(root: &JsonValue) -> Violations {
    match root.get("bench").and_then(JsonValue::as_str) {
        Some("bench_ingest") => validate_ingest(root),
        Some("bench_serve") => validate_serve(root),
        Some(other) => Violations(vec![format!(
            "\"bench\" is {other:?}, expected \"bench_ingest\" or \"bench_serve\""
        )]),
        None => Violations(vec!["missing string field \"bench\"".to_string()]),
    }
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("BENCH_INGEST_JSON").ok())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_ingest.json"));

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_bench_schema: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let root = match parse_json(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!(
                "check_bench_schema: {} is not valid JSON: {e}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let bench = root
        .get("bench")
        .and_then(JsonValue::as_str)
        .unwrap_or("bench_ingest");
    let violations = validate(&root);
    if violations.0.is_empty() {
        let results = root
            .get("results")
            .and_then(JsonValue::as_array)
            .map_or(0, <[JsonValue]>::len);
        println!(
            "check_bench_schema: {} conforms to the {bench} schema ({results} results)",
            path.display()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "check_bench_schema: {} violates the {bench} schema:",
            path.display()
        );
        for v in &violations.0 {
            eprintln!("  - {v}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_doc() -> String {
        r#"{
          "bench": "bench_ingest",
          "schema_version": 6,
          "meta": {
            "git_commit": "abc123",
            "backends": ["polynomial", "tabulation", "polynomial4"],
            "default_backend": "polynomial",
            "coalescing_modes": ["per_update", "sharded_2", "coalesced_full", "pipelined_2",
                                 "hash_stage", "apply_stage", "eval_stage"],
            "available_parallelism": 4,
            "quick": true
          },
          "workload": {"distribution": "zipf"},
          "speedup_coalesced_vs_per_update": 5.1,
          "speedup_tabulation_vs_polynomial_per_update": 3.9,
          "speedup_gsum_coalesced_vs_per_update": 11.5,
          "speedup_gsum_round4_vs_round3": 1.6,
          "results": [
            {"name": "ams/eval_stage/polynomial4", "mode": "eval_stage",
             "backend": "polynomial4", "ns_per_iter": 6.0, "updates_per_sec": 100.0,
             "iterations": 8},
            {"name": "ams/eval_stage/tabulation", "mode": "eval_stage",
             "backend": "tabulation", "ns_per_iter": 6.0, "updates_per_sec": 100.0,
             "iterations": 8},
            {"name": "countsketch/per_update/polynomial", "mode": "per_update",
             "backend": "polynomial", "ns_per_iter": 10.0, "updates_per_sec": 100.0,
             "iterations": 8},
            {"name": "countsketch/sharded_2/tabulation", "mode": "sharded_2",
             "backend": "tabulation", "ns_per_iter": 10.0, "updates_per_sec": 100.0,
             "iterations": 8},
            {"name": "countsketch/coalesced_full/polynomial", "mode": "coalesced_full",
             "backend": "polynomial", "ns_per_iter": 10.0, "updates_per_sec": 100.0,
             "iterations": 8},
            {"name": "countsketch/coalesced_full/tabulation", "mode": "coalesced_full",
             "backend": "tabulation", "ns_per_iter": 10.0, "updates_per_sec": 100.0,
             "iterations": 8},
            {"name": "countsketch/hash_stage/polynomial", "mode": "hash_stage",
             "backend": "polynomial", "ns_per_iter": 4.0, "updates_per_sec": 100.0,
             "iterations": 8},
            {"name": "countsketch/hash_stage/tabulation", "mode": "hash_stage",
             "backend": "tabulation", "ns_per_iter": 4.0, "updates_per_sec": 100.0,
             "iterations": 8},
            {"name": "countsketch/apply_stage/polynomial", "mode": "apply_stage",
             "backend": "polynomial", "ns_per_iter": 3.0, "updates_per_sec": 100.0,
             "iterations": 8},
            {"name": "countsketch/apply_stage/tabulation", "mode": "apply_stage",
             "backend": "tabulation", "ns_per_iter": 3.0, "updates_per_sec": 100.0,
             "iterations": 8},
            {"name": "onepass_gsum/coalesced_full/polynomial", "mode": "coalesced_full",
             "backend": "polynomial", "ns_per_iter": 10.0, "updates_per_sec": 100.0,
             "iterations": 8},
            {"name": "onepass_gsum/coalesced_full/tabulation", "mode": "coalesced_full",
             "backend": "tabulation", "ns_per_iter": 10.0, "updates_per_sec": 100.0,
             "iterations": 8},
            {"name": "onepass_gsum/sharded_2/polynomial", "mode": "sharded_2",
             "backend": "polynomial", "ns_per_iter": 10.0, "updates_per_sec": 100.0,
             "iterations": 8},
            {"name": "onepass_gsum/sharded_2/tabulation", "mode": "sharded_2",
             "backend": "tabulation", "ns_per_iter": 10.0, "updates_per_sec": 100.0,
             "iterations": 8},
            {"name": "onepass_gsum/pipelined_2/polynomial", "mode": "pipelined_2",
             "backend": "polynomial", "ns_per_iter": 10.0, "updates_per_sec": 100.0,
             "iterations": 8},
            {"name": "onepass_gsum/pipelined_2/tabulation", "mode": "pipelined_2",
             "backend": "tabulation", "ns_per_iter": 10.0, "updates_per_sec": 100.0,
             "iterations": 8}
          ]
        }"#
        .to_string()
    }

    fn valid_serve_doc() -> String {
        r#"{
          "bench": "bench_serve",
          "schema_version": 2,
          "meta": {
            "git_commit": "abc123",
            "workers": 2,
            "max_connections": 64,
            "policy": "merge_completed",
            "functions": ["x^2", "min(x, 100)"],
            "available_parallelism": 4,
            "quick": false
          },
          "workload": {"distribution": "zipf", "alpha": 1.2},
          "results": [
            {"name": "serve/connections_per_sec", "kind": "throughput",
             "value": 3000.0, "unit": "conn/s", "samples": 2000},
            {"name": "serve/ingest_updates_per_sec/clients_1", "kind": "throughput",
             "value": 900000.0, "unit": "upd/s", "samples": 500000},
            {"name": "serve/ingest_updates_per_sec/clients_4", "kind": "throughput",
             "value": 1100000.0, "unit": "upd/s", "samples": 2000000},
            {"name": "serve/est_latency_p50", "kind": "latency",
             "value": 2000.0, "unit": "us", "samples": 2000},
            {"name": "serve/est_latency_p99", "kind": "latency",
             "value": 3500.0, "unit": "us", "samples": 2000},
            {"name": "serve/count_latency_p50", "kind": "latency",
             "value": 10.0, "unit": "us", "samples": 2000},
            {"name": "serve/count_latency_p99", "kind": "latency",
             "value": 300.0, "unit": "us", "samples": 2000},
            {"name": "serve/est_latency_p50/x^2", "kind": "latency",
             "value": 2100.0, "unit": "us", "samples": 2000},
            {"name": "serve/est_latency_p99/x^2", "kind": "latency",
             "value": 3600.0, "unit": "us", "samples": 2000},
            {"name": "serve/est_latency_p50/min(x, 100)", "kind": "latency",
             "value": 2200.0, "unit": "us", "samples": 2000},
            {"name": "serve/est_latency_p99/min(x, 100)", "kind": "latency",
             "value": 3700.0, "unit": "us", "samples": 2000}
          ]
        }"#
        .to_string()
    }

    fn violations_of(doc: &str) -> Vec<String> {
        validate(&parse_json(doc).unwrap()).0
    }

    #[test]
    fn the_valid_document_passes() {
        assert_eq!(violations_of(&valid_doc()), Vec::<String>::new());
    }

    #[test]
    fn the_valid_serve_document_passes() {
        assert_eq!(violations_of(&valid_serve_doc()), Vec::<String>::new());
    }

    #[test]
    fn the_committed_serve_artifact_passes() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
        let text = std::fs::read_to_string(path).expect("committed BENCH_serve.json");
        assert_eq!(violations_of(&text), Vec::<String>::new());
    }

    #[test]
    fn unknown_bench_kind_is_caught() {
        let doc = valid_serve_doc().replace("\"bench\": \"bench_serve\"", "\"bench\": \"bench_x\"");
        assert!(violations_of(&doc)
            .iter()
            .any(|v| v.contains("bench_x") && v.contains("expected")));
    }

    #[test]
    fn wrong_serve_schema_version_is_caught() {
        let doc = valid_serve_doc().replace("\"schema_version\": 2", "\"schema_version\": 1");
        assert!(violations_of(&doc)
            .iter()
            .any(|v| v.contains("schema_version")));
    }

    #[test]
    fn missing_or_single_function_meta_is_caught() {
        let doc = valid_serve_doc().replace("\"functions\": [\"x^2\", \"min(x, 100)\"],", "");
        assert!(violations_of(&doc)
            .iter()
            .any(|v| v.contains("functions") && v.contains("meta")));

        let doc = valid_serve_doc().replace(
            "\"functions\": [\"x^2\", \"min(x, 100)\"],",
            "\"functions\": [\"x^2\"],",
        );
        assert!(violations_of(&doc)
            .iter()
            .any(|v| v.contains("at least two")));
    }

    #[test]
    fn missing_per_function_latency_row_is_caught() {
        let doc = valid_serve_doc().replace(
            "serve/est_latency_p99/min(x, 100)",
            "serve/est_latency_p99/min(x, 999)",
        );
        assert!(violations_of(&doc)
            .iter()
            .any(|v| v.contains("serve/est_latency_p99/min(x, 100)") && v.contains("missing")));
    }

    #[test]
    fn swapped_per_function_percentiles_are_caught() {
        let doc = valid_serve_doc().replacen("\"value\": 3600.0", "\"value\": 1.0", 1);
        let violations = violations_of(&doc);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("serve/est_latency_p50/x^2") && v.contains("exceeds")),
            "{violations:?}"
        );
    }

    #[test]
    fn missing_serve_worker_pool_meta_is_caught() {
        let doc = valid_serve_doc().replace("\"workers\": 2,", "");
        assert!(violations_of(&doc)
            .iter()
            .any(|v| v.contains("workers") && v.contains("meta")));

        let doc = valid_serve_doc().replace("\"max_connections\": 64,", "\"max_connections\": 0,");
        assert!(violations_of(&doc)
            .iter()
            .any(|v| v.contains("max_connections")));
    }

    #[test]
    fn missing_required_serve_row_is_caught() {
        let doc = valid_serve_doc().replace(
            "serve/ingest_updates_per_sec/clients_4",
            "serve/ingest_updates_per_sec/clients_9",
        );
        assert!(
            violations_of(&doc)
                .iter()
                .any(|v| v.contains("serve/ingest_updates_per_sec/clients_4")
                    && v.contains("missing"))
        );
    }

    #[test]
    fn unknown_serve_result_kind_is_caught() {
        let doc = valid_serve_doc().replacen("\"kind\": \"latency\"", "\"kind\": \"speed\"", 1);
        assert!(violations_of(&doc)
            .iter()
            .any(|v| v.contains("\"speed\"") && v.contains("throughput")));
    }

    #[test]
    fn nonpositive_serve_value_is_caught() {
        let doc = valid_serve_doc().replacen("\"value\": 3000.0", "\"value\": 0", 1);
        assert!(violations_of(&doc)
            .iter()
            .any(|v| v.contains("value") && v.contains("results[0]")));
    }

    #[test]
    fn swapped_latency_percentiles_are_caught() {
        let doc = valid_serve_doc().replacen("\"value\": 3500.0", "\"value\": 1.0", 1);
        let violations = violations_of(&doc);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("est_latency_p50") && v.contains("exceeds")),
            "{violations:?}"
        );
    }

    #[test]
    fn the_committed_artifact_passes() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
        let text = std::fs::read_to_string(path).expect("committed BENCH_ingest.json");
        assert_eq!(violations_of(&text), Vec::<String>::new());
    }

    #[test]
    fn missing_meta_block_is_caught() {
        let doc = valid_doc().replace("\"meta\"", "\"meta_gone\"");
        assert!(violations_of(&doc).iter().any(|v| v.contains("meta")));
    }

    #[test]
    fn wrong_schema_version_is_caught() {
        let doc = valid_doc().replace("\"schema_version\": 6", "\"schema_version\": 5");
        assert!(violations_of(&doc)
            .iter()
            .any(|v| v.contains("schema_version")));
    }

    #[test]
    fn missing_ams_eval_stage_row_is_caught() {
        let doc = valid_doc().replace("ams/eval_stage/tabulation", "ams/eval_stage/oops");
        assert!(violations_of(&doc)
            .iter()
            .any(|v| v.contains("ams/eval_stage/tabulation") && v.contains("missing")));
    }

    #[test]
    fn missing_round4_speedup_field_is_caught() {
        let doc = valid_doc().replace("\"speedup_gsum_round4_vs_round3\": 1.6,", "");
        assert!(violations_of(&doc)
            .iter()
            .any(|v| v.contains("speedup_gsum_round4_vs_round3")));
    }

    #[test]
    fn ams_eval_stage_exceeding_the_pipeline_total_is_caught() {
        // An isolated sign-kernel row slower than the whole onepass_gsum
        // pipeline (10.0 ns here) cannot be measuring the same workload.
        let doc = valid_doc().replacen(
            r#"{"name": "ams/eval_stage/polynomial4", "mode": "eval_stage",
             "backend": "polynomial4", "ns_per_iter": 6.0"#,
            r#"{"name": "ams/eval_stage/polynomial4", "mode": "eval_stage",
             "backend": "polynomial4", "ns_per_iter": 11.0"#,
            1,
        );
        let violations = violations_of(&doc);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("ams/eval_stage/polynomial4") && v.contains("exceeds")),
            "{violations:?}"
        );
    }

    #[test]
    fn missing_stage_split_row_is_caught() {
        let doc = valid_doc().replace(
            "countsketch/hash_stage/tabulation",
            "countsketch/hash_stage/oops",
        );
        assert!(violations_of(&doc)
            .iter()
            .any(|v| v.contains("countsketch/hash_stage/tabulation") && v.contains("missing")));
    }

    #[test]
    fn stage_sum_exceeding_the_total_is_caught() {
        // Inflate the polynomial hash stage past what the whole pipeline
        // took: the decomposition no longer adds up, so the gate rejects.
        let doc = valid_doc().replacen(
            r#"{"name": "countsketch/hash_stage/polynomial", "mode": "hash_stage",
             "backend": "polynomial", "ns_per_iter": 4.0"#,
            r#"{"name": "countsketch/hash_stage/polynomial", "mode": "hash_stage",
             "backend": "polynomial", "ns_per_iter": 9.0"#,
            1,
        );
        let violations = violations_of(&doc);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("polynomial hash_stage + apply_stage")
                    && v.contains("exceeds")),
            "{violations:?}"
        );
        // The tolerance absorbs sub-5% jitter: 4.0 + 3.0 against a total of
        // 6.9 stays within 1.05x and must pass.
        let doc = valid_doc().replacen(
            r#"{"name": "countsketch/coalesced_full/polynomial", "mode": "coalesced_full",
             "backend": "polynomial", "ns_per_iter": 10.0"#,
            r#"{"name": "countsketch/coalesced_full/polynomial", "mode": "coalesced_full",
             "backend": "polynomial", "ns_per_iter": 6.9"#,
            1,
        );
        assert_eq!(violations_of(&doc), Vec::<String>::new());
    }

    #[test]
    fn missing_required_gsum_row_is_caught() {
        let doc = valid_doc().replace(
            "onepass_gsum/pipelined_2/polynomial",
            "onepass_gsum/pipelined_9/polynomial",
        );
        let violations = violations_of(&doc);
        assert!(violations
            .iter()
            .any(|v| v.contains("onepass_gsum/pipelined_2/polynomial") && v.contains("missing")));
    }

    #[test]
    fn missing_gsum_speedup_field_is_caught() {
        let doc = valid_doc().replace("\"speedup_gsum_coalesced_vs_per_update\": 11.5,", "");
        assert!(violations_of(&doc)
            .iter()
            .any(|v| v.contains("speedup_gsum_coalesced_vs_per_update")));
    }

    #[test]
    fn missing_or_fractional_available_parallelism_is_caught() {
        let doc = valid_doc().replace("\"available_parallelism\": 4,", "");
        assert!(violations_of(&doc)
            .iter()
            .any(|v| v.contains("available_parallelism")));

        let doc = valid_doc().replace(
            "\"available_parallelism\": 4,",
            "\"available_parallelism\": 2.5,",
        );
        assert!(violations_of(&doc)
            .iter()
            .any(|v| v.contains("available_parallelism")));
    }

    #[test]
    fn result_mode_and_name_disagreement_is_caught() {
        let doc = valid_doc().replace("\"mode\": \"per_update\"", "\"mode\": \"sharded_2\"");
        assert!(violations_of(&doc).iter().any(|v| v.contains("disagrees")));
    }

    #[test]
    fn missing_per_result_backend_is_caught() {
        let doc = valid_doc().replace("\"backend\": \"tabulation\",", "");
        assert!(violations_of(&doc)
            .iter()
            .any(|v| v.contains("backend") && v.contains("results[1]")));
    }

    #[test]
    fn nonfinite_and_nonpositive_numbers_are_caught() {
        let doc = valid_doc().replacen(
            "\"ns_per_iter\": 10.0, \"updates_per_sec\": 100.0,\n             \"iterations\": 8},",
            "\"ns_per_iter\": -1, \"updates_per_sec\": 100.0,\n             \"iterations\": 2.5},",
            1,
        );
        let violations = violations_of(&doc);
        assert!(violations.iter().any(|v| v.contains("ns_per_iter")));
        assert!(violations.iter().any(|v| v.contains("iterations")));
    }

    #[test]
    fn unknown_backend_against_meta_is_caught() {
        let doc = valid_doc().replace(
            "\"backends\": [\"polynomial\", \"tabulation\", \"polynomial4\"]",
            "\"backends\": [\"polynomial\", \"polynomial4\"]",
        );
        assert!(violations_of(&doc)
            .iter()
            .any(|v| v.contains("not in meta.backends")));
    }

    #[test]
    fn empty_results_are_caught() {
        let start = valid_doc().find("\"results\"").unwrap();
        let doc = format!("{}\"results\": []\n        }}", &valid_doc()[..start]);
        assert!(violations_of(&doc)
            .iter()
            .any(|v| v.contains("results") && v.contains("empty")));
    }
}
