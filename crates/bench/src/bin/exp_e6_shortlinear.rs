//! Experiment E6 table emitter (see EXPERIMENTS.md). Prints Markdown to stdout.

fn main() {
    println!("{}", gsum_bench::e6_shortlinear(20).to_markdown());
}
