//! # gsum-bench
//!
//! The experiment harness: every experiment E1–E10 of `DESIGN.md` /
//! `EXPERIMENTS.md` is a function in this crate returning a
//! machine-readable [`ExperimentTable`]; the `exp_*` binaries print the
//! tables as Markdown (which is pasted into `EXPERIMENTS.md`), and the
//! Criterion benches under `benches/` measure the throughput of the
//! underlying data structures.
//!
//! The paper itself has no measured tables or figures (it is a theory
//! paper), so the experiment suite is designed to check each *claim*:
//! classification of the worked examples, accuracy/space behaviour of the
//! upper-bound algorithms, failure of bounded-space sketches on the
//! lower-bound reduction streams, the nearly periodic special case, the
//! ShortLinearCombination threshold, and the §1.1 applications.

pub mod experiments;
pub mod json;
pub mod table;

pub use experiments::*;
pub use table::ExperimentTable;
