//! The experiment suite E1–E10 (see `DESIGN.md` §6 and `EXPERIMENTS.md`).
//!
//! Each function is deterministic given its arguments and returns an
//! [`ExperimentTable`] ready for Markdown rendering.  The default parameters
//! are laptop-scale (seconds per experiment in release mode).

use crate::table::{fmt, ExperimentTable};
use gsum_comm::{DisjIndInstance, DistInstance, IndexInstance, SketchDistinguisher};
use gsum_core::apps::{ClickBilling, MixtureSampler, MleEstimator};
use gsum_core::{
    exact_gsum, DistCounter, DistVerdict, GSumConfig, GSumEstimator, MomentEstimator,
    NearlyPeriodicGSum, OnePassGSum, TwoPassGSum,
};
use gsum_gfunc::library::{
    GnpFunction, InversePowerFunction, OscillatingQuadratic, PoissonMixtureNll, PowerFunction,
    SpamDiscountUtility,
};
use gsum_gfunc::{FunctionRegistry, GFunction, PropertyConfig};
use gsum_streams::{
    FrequencyPrescribedGenerator, StreamConfig, StreamGenerator, StreamSink, TurnstileStream,
    ZipfStreamGenerator,
};

/// Relative error helper.
fn rel_err(estimate: f64, truth: f64) -> f64 {
    (estimate - truth).abs() / truth.abs().max(1e-12)
}

fn zipf(domain: u64, length: usize, seed: u64) -> TurnstileStream {
    ZipfStreamGenerator::new(StreamConfig::new(domain, length), 1.2, seed).generate()
}

/// E1 — the zero-one-law classification table over the built-in registry
/// (reproduces the worked examples of §3 and §4.6).
pub fn e1_classification(config: &PropertyConfig) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E1",
        "Zero-one-law classification of the paper's worked examples",
        "Theorems 2 and 3: 1-pass tractable iff slow-jumping + slow-dropping + predictable; \
         2-pass tractable iff slow-jumping + slow-dropping; nearly periodic functions are \
         outside the law (Definition 9).",
        vec![
            "function",
            "slow-jumping",
            "slow-dropping",
            "predictable",
            "nearly periodic",
            "1-pass verdict",
            "2-pass verdict",
            "matches paper",
        ],
    );
    let registry = FunctionRegistry::standard();
    for (entry, report, matches) in registry.classification_table(config) {
        table.push_row(vec![
            entry.name(),
            report.slow_jumping.holds.to_string(),
            report.slow_dropping.holds.to_string(),
            report.predictable.holds.to_string(),
            report.nearly_periodic.nearly_periodic.to_string(),
            format!("{:?}", report.one_pass),
            format!("{:?}", report.two_pass),
            matches.to_string(),
        ]);
    }
    table
}

/// E2 — one-pass accuracy versus space for tractable functions on skewed
/// streams.
pub fn e2_one_pass_accuracy(domain: u64, length: usize, trials: usize) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E2",
        "One-pass g-SUM accuracy vs. CountSketch width (tractable functions)",
        "Theorem 2 upper bound: slow-jumping, slow-dropping, predictable functions admit a \
         (1±ε) one-pass estimator whose error shrinks as the (sub-polynomial) sketch grows.",
        vec!["function", "columns", "space (words)", "median rel. error"],
    );
    let functions: Vec<(Box<dyn GFunction>, &str)> = vec![
        (Box::new(PowerFunction::new(0.5)), "x^0.5"),
        (Box::new(PowerFunction::new(1.5)), "x^1.5"),
        (Box::new(PowerFunction::new(2.0)), "x^2"),
        (Box::new(OscillatingQuadratic::log()), "(2+sin ln(1+x))x^2"),
        (Box::new(SpamDiscountUtility::new(50)), "spam-discount(50)"),
    ];
    let stream = zipf(domain, length, 11);
    for (g, name) in &functions {
        let truth = exact_gsum(g.as_ref(), &stream.frequency_vector());
        for &columns in &[128usize, 512, 2048] {
            let cfg = GSumConfig::with_space_budget(domain, 0.2, columns, 7);
            let mut errors: Vec<f64> = Vec::new();
            for t in 0..trials {
                let est = NamedOnePass::new(g.as_ref(), cfg.clone());
                errors.push(rel_err(
                    est.estimate_with_seed(&stream, 1000 + t as u64),
                    truth,
                ));
            }
            errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = errors[errors.len() / 2];
            let space = NamedOnePass::new(g.as_ref(), cfg.clone()).space_words();
            table.push_row(vec![
                name.to_string(),
                columns.to_string(),
                space.to_string(),
                fmt(median),
            ]);
        }
    }
    table
}

/// A small adapter: `OnePassGSum` over a `&dyn GFunction` (the estimator is
/// generic over `Clone`, and `&dyn GFunction` is `Copy`).
struct NamedOnePass<'a> {
    inner: OnePassGSum<&'a dyn GFunction>,
}

impl<'a> NamedOnePass<'a> {
    fn new(g: &'a dyn GFunction, cfg: GSumConfig) -> Self {
        Self {
            inner: OnePassGSum::new(g, cfg),
        }
    }
    fn estimate_with_seed(&self, stream: &TurnstileStream, seed: u64) -> f64 {
        self.inner.estimate_with_seed(stream, seed)
    }
    fn space_words(&self) -> usize {
        self.inner.space_words()
    }
}

/// E3 — the 1-pass vs 2-pass separation on an unpredictable function.
pub fn e3_two_pass_separation(trials: usize) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E3",
        "Predictability separates one pass from two passes",
        "Theorem 2 vs Theorem 3: (2+sin x)x² and (2+sin √x)x² are slow-jumping and \
         slow-dropping but not predictable, so they are 2-pass tractable yet 1-pass \
         intractable; the 2-pass algorithm's exact second pass removes the error that the \
         1-pass algorithm cannot avoid.",
        vec![
            "function",
            "workload",
            "1-pass median rel. error",
            "2-pass median rel. error",
        ],
    );
    let domain = 1u64 << 10;
    // A dominant item whose frequency can only be estimated approximately in
    // one pass, plus background noise.
    let stream = gsum_streams::PlantedStreamGenerator::new(
        StreamConfig::new(domain, 50_000),
        vec![(5, 100_000), (77, 60_001)],
        3,
    )
    .generate();
    for (g, name) in [
        (OscillatingQuadratic::direct(), "(2+sin x)x^2"),
        (OscillatingQuadratic::sqrt(), "(2+sin sqrt x)x^2"),
        (OscillatingQuadratic::log(), "(2+sin ln(1+x))x^2"),
    ] {
        let truth = exact_gsum(&g, &stream.frequency_vector());
        let cfg = GSumConfig::with_space_budget(domain, 0.1, 128, 5);
        let one = OnePassGSum::new(g, cfg.clone());
        let two = TwoPassGSum::new(g, cfg);
        let median = |errs: &mut Vec<f64>| {
            errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            errs[errs.len() / 2]
        };
        let mut one_errs: Vec<f64> = (0..trials)
            .map(|t| rel_err(one.estimate_with_seed(&stream, 30 + t as u64), truth))
            .collect();
        let mut two_errs: Vec<f64> = (0..trials)
            .map(|t| rel_err(two.estimate_with_seed(&stream, 30 + t as u64), truth))
            .collect();
        table.push_row(vec![
            name.to_string(),
            "planted heavy hitters".to_string(),
            fmt(median(&mut one_errs)),
            fmt(median(&mut two_errs)),
        ]);
    }
    table
}

/// E4 — the lower-bound reductions: bounded-space sketches fail to
/// distinguish the INDEX / DISJ+IND worlds for intractable functions, while
/// the exact statistic separates them perfectly.
pub fn e4_lower_bounds(trials: usize) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E4",
        "The lower-bound reduction streams: exact separation vs. sketch failure",
        "Lemmas 23/24: for a function that is not slow-dropping (1/x) the INDEX reduction, \
         and for one that is not slow-jumping (x^3) the DISJ+IND reduction, create two \
         worlds whose exact g-SUMs differ by a constant factor (exact statistic: advantage \
         ≈ 1).  Any algorithm that solved (g, ε)-SUM in small space would inherit that \
         advantage and contradict the Ω(n^α) communication bound; consistently, the small \
         one-pass sketch does not approximate g-SUM on these streams (large median relative \
         error).",
        vec![
            "function",
            "reduction",
            "statistic",
            "space (words)",
            "advantage",
            "median rel. error",
        ],
    );

    /// Median relative error of a statistic against the exact g-SUM over the
    /// "yes"-world streams.
    fn median_rel_error(
        trials: usize,
        mut make: impl FnMut(u64) -> TurnstileStream,
        mut stat: impl FnMut(u64, &TurnstileStream) -> f64,
        exact: impl Fn(&TurnstileStream) -> f64,
    ) -> f64 {
        let mut errs: Vec<f64> = (0..trials as u64)
            .map(|t| {
                let s = make(t);
                let truth = exact(&s);
                (stat(t, &s) - truth).abs() / truth.abs().max(1e-12)
            })
            .collect();
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        errs[errs.len() / 2]
    }

    // --- 1/x with the INDEX reduction (Lemma 23). ---
    let n = 256u64;
    let g_inv = InversePowerFunction::new(1.0);
    let exact_inv = |s: &TurnstileStream| exact_gsum(&g_inv, &s.frequency_vector());
    let report = SketchDistinguisher::run(
        trials,
        |t| IndexInstance::random(n, false, t).reduction_stream(n, 1),
        |t| IndexInstance::random(n, true, t).reduction_stream(n, 1),
        |_t, s| exact_inv(s),
    );
    table.push_row(vec![
        "1/x".into(),
        "INDEX".into(),
        "exact g-SUM".into(),
        "n/a".into(),
        fmt(report.advantage),
        "0".into(),
    ]);
    let cfg = GSumConfig::with_space_budget(n, 0.2, 16, 3).with_levels(4);
    let sketch = OnePassGSum::new(g_inv, cfg);
    let space = sketch.space_words();
    let report = SketchDistinguisher::run(
        trials,
        |t| IndexInstance::random(n, false, t).reduction_stream(n, 1),
        |t| IndexInstance::random(n, true, t).reduction_stream(n, 1),
        |t, s| sketch.estimate_with_seed(s, t),
    );
    let err = median_rel_error(
        trials,
        |t| IndexInstance::random(n, true, t).reduction_stream(n, 1),
        |t, s| sketch.estimate_with_seed(s, t),
        exact_inv,
    );
    table.push_row(vec![
        "1/x".into(),
        "INDEX".into(),
        "one-pass sketch".into(),
        space.to_string(),
        fmt(report.advantage),
        fmt(err),
    ]);

    // --- x^3 with the DISJ+IND reduction (Lemma 24). ---
    let g_cubic = PowerFunction::new(3.0);
    let exact_cubic = |s: &TurnstileStream| exact_gsum(&g_cubic, &s.frequency_vector());
    let x = 8u64;
    let remainder = 3u64;
    let players = 4usize;
    let report = SketchDistinguisher::run(
        trials,
        |t| DisjIndInstance::random(n, players, false, t).reduction_stream(x, remainder),
        |t| DisjIndInstance::random(n, players, true, t).reduction_stream(x, remainder),
        |_t, s| exact_cubic(s),
    );
    table.push_row(vec![
        "x^3".into(),
        "DISJ+IND".into(),
        "exact g-SUM".into(),
        "n/a".into(),
        fmt(report.advantage),
        "0".into(),
    ]);
    let cfg = GSumConfig::with_space_budget(n, 0.2, 16, 9).with_levels(4);
    let sketch = OnePassGSum::new(g_cubic, cfg);
    let space = sketch.space_words();
    let report = SketchDistinguisher::run(
        trials,
        |t| DisjIndInstance::random(n, players, false, t).reduction_stream(x, remainder),
        |t| DisjIndInstance::random(n, players, true, t).reduction_stream(x, remainder),
        |t, s| sketch.estimate_with_seed(s, t),
    );
    let err = median_rel_error(
        trials,
        |t| DisjIndInstance::random(n, players, true, t).reduction_stream(x, remainder),
        |t, s| sketch.estimate_with_seed(s, t),
        exact_cubic,
    );
    table.push_row(vec![
        "x^3".into(),
        "DISJ+IND".into(),
        "one-pass sketch".into(),
        space.to_string(),
        fmt(report.advantage),
        fmt(err),
    ]);
    table
}

/// E5 — the nearly periodic special case: `g_np` is handled by the bespoke
/// Proposition-54 algorithm, while the generic CountSketch route mis-handles
/// it.
pub fn e5_nearly_periodic(trials: usize) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E5",
        "The nearly periodic function g_np",
        "Proposition 53/54 and Appendix D.1: g_np escapes the normal law (it is nearly \
         periodic), yet a dedicated low-bit heavy-hitter routine inside the recursive sketch \
         approximates g_np-SUM in one pass and small space; the generic CountSketch-based \
         one-pass algorithm has no such guarantee.",
        vec!["estimator", "median rel. error", "space (words)"],
    );
    let domain = 1u64 << 10;
    let g = GnpFunction::new();
    let stream = FrequencyPrescribedGenerator::new(
        domain,
        vec![(2048, 1), (512, 2), (64, 5), (8, 30), (3, 60), (1, 150)],
        9,
    )
    .with_bulk_updates()
    .generate();
    let truth = exact_gsum(&g, &stream.frequency_vector());

    let np = NearlyPeriodicGSum::new(GSumConfig::with_space_budget(domain, 0.2, 256, 5));
    let mut np_errs: Vec<f64> = (0..trials)
        .map(|t| rel_err(np.estimate_with_seed(&stream, 100 + t as u64), truth))
        .collect();
    np_errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    table.push_row(vec![
        "Prop. 54 low-bit algorithm".into(),
        fmt(np_errs[np_errs.len() / 2]),
        np.space_words().to_string(),
    ]);

    let generic = OnePassGSum::new(g, GSumConfig::with_space_budget(domain, 0.2, 256, 5));
    let mut gen_errs: Vec<f64> = (0..trials)
        .map(|t| rel_err(generic.estimate_with_seed(&stream, 100 + t as u64), truth))
        .collect();
    gen_errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    table.push_row(vec![
        "generic one-pass (Algorithm 2)".into(),
        fmt(gen_errs[gen_errs.len() / 2]),
        generic.space_words().to_string(),
    ]);
    table
}

/// E6 — the ShortLinearCombination threshold: detection accuracy and space of
/// the Proposition-49 counter algorithm as the minimal coefficient `q`
/// varies.
pub fn e6_shortlinear(trials: usize) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E6",
        "(a,b,c)-DIST: accuracy and space vs. the minimal coefficient q",
        "Theorem 48 / Proposition 49: distinguishing a ±c coordinate among ±a/±b coordinates \
         takes Θ̃(n/q²) space where c = p·a + q·b with minimal |q|; the counter algorithm \
         with that many pieces decides correctly with probability ≥ 2/3.",
        vec![
            "(a, b, c)",
            "|q|",
            "pieces",
            "accuracy (yes)",
            "accuracy (no)",
        ],
    );
    // Triples with a comfortable coefficient margin; tiny-q triples such as
    // (5, 3, 1) are exactly the instances whose Ω(n/q²) bound degenerates to
    // Ω(n), where no sub-linear counter structure can succeed.
    let domain = 1u64 << 12;
    for &(a, b, c) in &[(11u64, 9u64, 1u64), (23, 19, 1)] {
        let q = DistCounter::minimal_q(a as i64, b as i64, c as i64)
            .expect("representable target")
            .unsigned_abs();
        let mut yes_correct = 0usize;
        let mut no_correct = 0usize;
        let mut pieces = 0usize;
        for t in 0..trials as u64 {
            let yes = DistInstance::random(domain, a, b, c, 100, 100, true, t);
            let no = DistInstance::random(domain, a, b, c, 100, 100, false, t + 500);
            let mut d = DistCounter::new(domain, a, b, c, t * 7 + 1);
            pieces = d.pieces();
            d.process_stream(&yes.stream());
            if d.verdict() == DistVerdict::HasTargetFrequency {
                yes_correct += 1;
            }
            let mut d = DistCounter::new(domain, a, b, c, t * 7 + 2);
            d.process_stream(&no.stream());
            if d.verdict() == DistVerdict::NoTargetFrequency {
                no_correct += 1;
            }
        }
        table.push_row(vec![
            format!("({a}, {b}, {c})"),
            q.to_string(),
            pieces.to_string(),
            fmt(yes_correct as f64 / trials as f64),
            fmt(no_correct as f64 / trials as f64),
        ]);
    }
    table
}

/// E7 — approximate maximum-likelihood estimation over a parameter grid.
pub fn e7_mle(samples: u64, trials: usize) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E7",
        "Approximate MLE for a Poisson mixture from the universal sketch",
        "§1.1.1: the universal sketch yields (1±ε) approximations of the log-likelihood of \
         every candidate parameter, so the approximate argmin has log-likelihood within \
         (1+ε) of the exact maximum-likelihood estimate.",
        vec![
            "samples",
            "grid size",
            "exact argmin beta",
            "approx argmin beta",
            "NLL ratio (approx/exact)",
        ],
    );
    let betas = [2.0f64, 4.0, 6.0, 8.0];
    let grid: Vec<PoissonMixtureNll> = betas
        .iter()
        .map(|&b| PoissonMixtureNll::new(0.5, 0.5, b))
        .collect();
    let true_model = PoissonMixtureNll::new(0.5, 0.5, 6.0);
    let stream = MixtureSampler::new(true_model, 31).sample_stream(samples);
    let estimator = MleEstimator::new(
        grid,
        GSumConfig::with_space_budget(samples.max(2), 0.2, 1024, 5),
    );
    let exact = estimator.exact(&stream);
    let approx = estimator.approximate(&stream, trials);
    let ratio = exact.nll_values[approx.best_index] / exact.best_value();
    table.push_row(vec![
        samples.to_string(),
        betas.len().to_string(),
        fmt(betas[exact.best_index]),
        fmt(betas[approx.best_index]),
        fmt(ratio),
    ]);
    table
}

/// E8 — frequency moments: the universal sketch tracks `F_k` for `k ≤ 2` and
/// degrades beyond (the original AMS question).
pub fn e8_moments(domain: u64, length: usize, trials: usize) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E8",
        "Frequency moments F_k through the universal sketch",
        "x^k is slow-jumping iff k ≤ 2 (Definition 6), so the one-pass estimator tracks \
         F_k accurately for k ≤ 2 and loses accuracy for k > 2 at the same space budget \
         (Indyk–Woodruff lineage; AMS for k = 2 shown for comparison).",
        vec![
            "k",
            "median rel. error (universal)",
            "rel. error (AMS, k=2 only)",
        ],
    );
    let stream = zipf(domain, length, 29);
    for &k in &[0.5f64, 1.0, 1.5, 2.0, 2.5, 3.0] {
        let truth = MomentEstimator::exact(&stream, k);
        let mut errs: Vec<f64> = (0..trials)
            .map(|t| {
                rel_err(
                    OnePassGSum::new(PowerFunction::new(k), est_config(domain))
                        .estimate_with_seed(&stream, 50 + t as u64),
                    truth,
                )
            })
            .collect();
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ams_col = if (k - 2.0).abs() < 1e-9 {
            fmt(rel_err(
                MomentEstimator::estimate_f2_ams(&stream, 0.15, 7),
                truth,
            ))
        } else {
            "-".to_string()
        };
        table.push_row(vec![fmt(k), fmt(errs[errs.len() / 2]), ams_col]);
    }
    table
}

fn est_config(domain: u64) -> GSumConfig {
    GSumConfig::with_space_budget(domain, 0.2, 1024, 3)
}

/// E9 — recursive-sketch ablation: accuracy as levels and CountSketch width
/// vary (the O(log n) overhead of Theorem 13).
pub fn e9_recursive_ablation(domain: u64, length: usize, trials: usize) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E9",
        "Recursive-sketch ablation: levels and width",
        "Theorem 13: the recursive sketch needs Θ(log n) subsampling levels on top of the \
         heavy-hitter routine; too few levels truncate the light tail of the sum, and wider \
         per-level CountSketches monotonically improve accuracy.",
        vec!["levels", "columns", "median rel. error"],
    );
    let stream = zipf(domain, length, 41);
    let g = PowerFunction::new(2.0);
    let truth = exact_gsum(&g, &stream.frequency_vector());
    for &levels in &[2usize, 4, 8, 12] {
        for &columns in &[128usize, 1024] {
            let cfg = GSumConfig::with_space_budget(domain, 0.2, columns, 13).with_levels(levels);
            let est = OnePassGSum::new(g, cfg);
            let mut errs: Vec<f64> = (0..trials)
                .map(|t| rel_err(est.estimate_with_seed(&stream, 70 + t as u64), truth))
                .collect();
            errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            table.push_row(vec![
                levels.to_string(),
                columns.to_string(),
                fmt(errs[errs.len() / 2]),
            ]);
        }
    }
    table
}

/// E10 — applications: spam-discounted billing and the higher-order
/// encoding.
pub fn e10_applications(trials: usize) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E10",
        "Applications: utility aggregates and higher-order encoding",
        "§1.1.2/§1.1.4: the non-monotone spam-discounted billing function is 1-pass \
         tractable and the sketched bill tracks the exact bill; the base-b encoded \
         two-attribute query is locally erratic, so the two-pass algorithm is the reliable \
         route.",
        vec!["scenario", "exact value", "estimate", "rel. error"],
    );
    // Billing.
    let domain = 1u64 << 10;
    let clicks = gsum_streams::PlantedStreamGenerator::new(
        StreamConfig::new(domain, 40_000),
        vec![(3, 20_000), (77, 9_000)],
        17,
    )
    .generate();
    let billing = ClickBilling::new(100, GSumConfig::with_space_budget(domain, 0.2, 1024, 3));
    let report = billing.bill(&clicks, trials);
    table.push_row(vec![
        "spam-discounted billing (1-pass)".into(),
        fmt(report.exact_discounted),
        fmt(report.estimated_discounted),
        fmt(report.relative_error),
    ]);
    table.push_row(vec![
        "capped-linear billing (exact reference)".into(),
        fmt(report.exact_capped),
        "-".into(),
        "-".into(),
    ]);

    // Higher-order encoding, via the two-pass estimator.
    use gsum_core::apps::{HigherOrderStream, TwoAttributeRecord};
    use gsum_gfunc::library::HigherOrderEncoded;
    let base = 32u64;
    let records = 512u64;
    let query = HigherOrderEncoded::new(base, 15);
    let mut enc = HigherOrderStream::new(records, base);
    let mut rng = gsum_hash::Xoshiro256::new(8);
    for id in 0..records {
        let a1 = rng.next_below(base);
        let a2 = rng.next_below(base);
        if a1 > 0 {
            enc.push(TwoAttributeRecord {
                id,
                attribute: 0,
                delta: a1 as i64,
            });
        }
        if a2 > 0 {
            enc.push(TwoAttributeRecord {
                id,
                attribute: 1,
                delta: a2 as i64,
            });
        }
    }
    let truth = enc.exact_query(&query);
    let est = TwoPassGSum::new(query, GSumConfig::with_space_budget(records, 0.2, 512, 11));
    let approx = est.estimate_median(enc.stream(), trials);
    table.push_row(vec![
        "base-32 filtered sum (2-pass)".into(),
        fmt(truth),
        fmt(approx),
        fmt(rel_err(approx, truth)),
    ]);
    table
}

/// Run the full suite with default (laptop-scale) parameters.
pub fn run_all() -> Vec<ExperimentTable> {
    vec![
        e1_classification(&PropertyConfig::default()),
        e2_one_pass_accuracy(1 << 10, 30_000, 3),
        e3_two_pass_separation(3),
        e4_lower_bounds(20),
        e5_nearly_periodic(5),
        e6_shortlinear(20),
        e7_mle(2_000, 3),
        e8_moments(1 << 10, 30_000, 3),
        e9_recursive_ablation(1 << 10, 30_000, 3),
        e10_applications(3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    // Keep the unit tests cheap: they check shape and headline direction on
    // reduced parameters; the full-scale numbers live in EXPERIMENTS.md.

    #[test]
    fn e1_table_matches_ground_truth_on_fast_window() {
        let table = e1_classification(&PropertyConfig::fast());
        assert!(table.rows.len() >= 20);
        for row in &table.rows {
            assert_eq!(row.last().unwrap(), "true", "mismatch row: {row:?}");
        }
    }

    #[test]
    fn e2_errors_shrink_with_width() {
        let table = e2_one_pass_accuracy(1 << 9, 8_000, 1);
        // For each function, error at the widest sketch ≤ error at the
        // narrowest + slack.
        for chunk in table.rows.chunks(3) {
            let narrow: f64 = chunk[0][3].parse().unwrap();
            let wide: f64 = chunk[2][3].parse().unwrap();
            assert!(wide <= narrow + 0.15, "{chunk:?}");
            assert!(wide < 0.5, "{chunk:?}");
        }
    }

    #[test]
    fn e4_exact_statistic_always_separates() {
        let table = e4_lower_bounds(8);
        for row in table.rows.iter().filter(|r| r[2] == "exact g-SUM") {
            let adv: f64 = row[4].parse().unwrap();
            assert!(adv > 0.9, "{row:?}");
        }
    }

    #[test]
    fn e6_counter_algorithm_is_mostly_correct() {
        let table = e6_shortlinear(8);
        for row in &table.rows {
            let yes: f64 = row[3].parse().unwrap();
            let no: f64 = row[4].parse().unwrap();
            assert!(yes >= 0.75 && no >= 0.75, "{row:?}");
        }
    }

    #[test]
    fn e5_special_algorithm_beats_generic_or_is_accurate() {
        let table = e5_nearly_periodic(3);
        let special: f64 = table.rows[0][1].parse().unwrap();
        assert!(special < 0.5, "{table:?}");
    }
}
