//! A minimal JSON parser for validating bench artifacts.
//!
//! The workspace builds offline (no serde), but CI needs to *gate* on the
//! structure of `BENCH_ingest.json` — a malformed or schema-drifted artifact
//! must fail the build, not get silently uploaded.  This module implements
//! just enough of RFC 8259 to parse the bench writer's output: objects,
//! arrays, strings with the standard escapes, numbers, booleans and null.
//! It is a validator's parser — strict on structure, with byte-offset error
//! reporting — not a general-purpose JSON library.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers the bench writer's
    /// integer and fixed-point outputs exactly).
    Number(f64),
    /// A string literal.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object.  Key order is not preserved (schema validation does not
    /// depend on it); duplicate keys keep the last value, as most parsers
    /// do.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value at an object key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON syntax error with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (rejecting trailing non-whitespace).
pub fn parse_json(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after the top-level value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {:?}, found {:?}",
                byte as char,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected literal {word:?}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not paired — the bench writer
                            // never emits them; reject rather than mangle.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(ch);
                        }
                        other => {
                            return Err(self.err(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_writer_shapes() {
        let doc = r#"{
          "bench": "bench_ingest",
          "schema_version": 2,
          "meta": {"quick": false, "backends": ["polynomial", "tabulation"]},
          "speedup": 5.113,
          "results": [{"name": "a/b/c", "ns_per_iter": 1.5e3, "iterations": 57}]
        }"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(
            v.get("schema_version").and_then(JsonValue::as_f64),
            Some(2.0)
        );
        assert_eq!(
            v.get("meta")
                .and_then(|m| m.get("quick"))
                .and_then(JsonValue::as_bool),
            Some(false)
        );
        let results = v.get("results").and_then(JsonValue::as_array).unwrap();
        assert_eq!(
            results[0].get("ns_per_iter").and_then(JsonValue::as_f64),
            Some(1500.0)
        );
        assert_eq!(
            results[0].get("name").and_then(JsonValue::as_str),
            Some("a/b/c")
        );
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = parse_json(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn negative_and_exponent_numbers() {
        assert_eq!(parse_json("-3.25").unwrap().as_f64(), Some(-3.25));
        assert_eq!(parse_json("2E-2").unwrap().as_f64(), Some(0.02));
        assert_eq!(
            parse_json("[null, true]")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn syntax_errors_carry_offsets() {
        for bad in [
            "{",
            "[1,",
            "\"open",
            "{\"a\" 1}",
            "1 2",
            "tru",
            "{\"a\": 01x}",
        ] {
            let err = parse_json(bad).unwrap_err();
            assert!(!err.message.is_empty(), "{bad:?} must fail: {err}");
        }
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse_json("\"Pătraşcu—Thorup\"").unwrap();
        assert_eq!(v.as_str(), Some("Pătraşcu—Thorup"));
    }
}
