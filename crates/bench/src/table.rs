//! A small table type shared by all experiments: serializable (for archival)
//! and Markdown-renderable (for EXPERIMENTS.md).

/// A titled table of string cells.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentTable {
    /// Experiment identifier, e.g. "E2".
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The paper claim the experiment checks.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Create an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        claim: impl Into<String>,
        headers: Vec<&str>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            claim: claim.into(),
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row length does not match the header length.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row/header length mismatch"
        );
        self.rows.push(cells);
    }

    /// Render as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("*Claim:* {}\n\n", self.claim));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Render as a JSON string (for archival alongside the Markdown).
    /// Serialization is hand-rolled — the build environment has no network
    /// access, so `serde_json` is not available.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_string(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_string(&self.title)));
        out.push_str(&format!("  \"claim\": {},\n", json_string(&self.claim)));
        out.push_str(&format!(
            "  \"headers\": [{}],\n",
            self.headers
                .iter()
                .map(|h| json_string(h))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let cells = row
                .iter()
                .map(|c| json_string(c))
                .collect::<Vec<_>>()
                .join(", ");
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            out.push_str(&format!("    [{cells}]{comma}\n"));
        }
        out.push_str("  ]\n}");
        out
    }
}

/// Escape a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float with three significant-ish decimals for table cells.
pub fn fmt(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 1000.0 {
        format!("{value:.0}")
    } else if value.abs() >= 1.0 {
        format!("{value:.2}")
    } else {
        format!("{value:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = ExperimentTable::new("E0", "demo", "a claim", vec!["x", "y"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### E0"));
        assert!(md.contains("| x | y |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("a claim"));
    }

    #[test]
    fn json_contains_fields_and_escapes() {
        let mut t = ExperimentTable::new("E1", "de\"mo", "claim", vec!["c"]);
        t.push_row(vec!["v\n".into()]);
        let json = t.to_json();
        assert!(json.contains("\"id\": \"E1\""));
        assert!(json.contains("de\\\"mo"));
        assert!(json.contains("v\\n"));
        assert!(json.contains("\"headers\": [\"c\"]"));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn row_length_checked() {
        let mut t = ExperimentTable::new("E1", "demo", "claim", vec!["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(1.23456), "1.23");
        assert_eq!(fmt(0.01234), "0.0123");
    }
}
