//! Lower-bound machinery cost (E4/E6 throughput counterparts): reduction
//! stream construction and the DIST counter algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use gsum_comm::{DisjIndInstance, DistInstance, IndexInstance};
use gsum_core::{DistCounter, StreamSink};

fn bench_comm(c: &mut Criterion) {
    c.bench_function("index_reduction_n256", |b| {
        b.iter(|| IndexInstance::random(256, true, 7).reduction_stream(256, 1))
    });
    c.bench_function("disj_ind_reduction_n256_t4", |b| {
        b.iter(|| DisjIndInstance::random(256, 4, true, 7).reduction_stream(8, 3))
    });
    let instance = DistInstance::random(1 << 12, 11, 9, 1, 150, 150, true, 3);
    let stream = instance.stream();
    c.bench_function("dist_counter_11_9_1", |b| {
        b.iter(|| {
            let mut d = DistCounter::new(1 << 12, 11, 9, 1, 5);
            d.process_stream(&stream);
            d.verdict()
        })
    });
}

criterion_group!(benches, bench_comm);
criterion_main!(benches);
