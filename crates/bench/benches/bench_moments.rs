//! Frequency-moment estimation cost (E8's throughput counterpart): the
//! universal sketch vs. the specialized AMS estimator for F2.

use criterion::{criterion_group, criterion_main, Criterion};
use gsum_core::{GSumConfig, MomentEstimator};
use gsum_sketch::{AmsF2Sketch, StreamSink};
use gsum_streams::{StreamConfig, StreamGenerator, ZipfStreamGenerator};

fn bench_moments(c: &mut Criterion) {
    let domain = 1u64 << 10;
    let stream = ZipfStreamGenerator::new(StreamConfig::new(domain, 30_000), 1.2, 9).generate();
    let mut group = c.benchmark_group("moments_30k_updates");
    for &k in &[1.0f64, 2.0] {
        let est = MomentEstimator::new(k, GSumConfig::with_space_budget(domain, 0.2, 1024, 3));
        group.bench_function(format!("universal_F{k}"), |b| {
            b.iter(|| est.estimate(&stream))
        });
    }
    group.bench_function("ams_F2", |b| {
        b.iter(|| {
            let mut ams = AmsF2Sketch::with_guarantee(0.15, 0.1, 5).unwrap();
            ams.process_stream(&stream);
            ams.estimate_f2()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_moments);
criterion_main!(benches);
