//! Ingestion throughput: per-update push vs batched push vs sharded
//! parallel ingestion, measured in updates/second on the same Zipf workload.
//!
//! The numbers justify the push-based architecture: `update_batch` amortizes
//! dispatch overhead, and `ShardedIngest` scales across cores because every
//! sketch is a mergeable linear state.  Note: sharded wall-clock speedup is
//! only visible on multi-core hosts (`nproc > 1`); on a single-core runner
//! the sharded rows measure the channel/merge overhead, which should stay
//! within a few percent of the batched baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gsum_core::{GSumConfig, OnePassGSumSketch};
use gsum_gfunc::library::PowerFunction;
use gsum_sketch::{CountSketch, CountSketchConfig};
use gsum_streams::{ShardedIngest, StreamConfig, StreamGenerator, StreamSink, ZipfStreamGenerator};

const DOMAIN: u64 = 1 << 12;
const UPDATES: usize = 50_000;

fn stream() -> gsum_streams::TurnstileStream {
    ZipfStreamGenerator::new(StreamConfig::new(DOMAIN, UPDATES), 1.2, 7).generate()
}

fn countsketch() -> CountSketch {
    CountSketch::new(CountSketchConfig::new(5, 1024).unwrap(), 3)
}

fn gsum_sketch() -> OnePassGSumSketch<PowerFunction> {
    let config = GSumConfig::with_space_budget(DOMAIN, 0.2, 512, 11);
    OnePassGSumSketch::new(PowerFunction::new(2.0), &config)
}

fn bench_countsketch_ingest(c: &mut Criterion) {
    let s = stream();
    let mut group = c.benchmark_group("countsketch_ingest_50k");
    group.throughput(Throughput::Elements(UPDATES as u64));

    group.bench_function("per_update", |b| {
        b.iter(|| {
            let mut cs = countsketch();
            for &u in s.iter() {
                cs.update(u);
            }
            cs
        })
    });
    group.bench_function("batched", |b| {
        b.iter(|| {
            let mut cs = countsketch();
            cs.update_batch(s.updates());
            cs
        })
    });
    for shards in [2usize, 4, 8] {
        group.bench_function(format!("sharded_{shards}"), |b| {
            b.iter(|| {
                ShardedIngest::new(shards)
                    .with_batch_size(2048)
                    .ingest(&mut s.source(), &countsketch())
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_gsum_ingest(c: &mut Criterion) {
    let s = stream();
    let mut group = c.benchmark_group("onepass_gsum_ingest_50k");
    group.throughput(Throughput::Elements(UPDATES as u64));

    group.bench_function("per_update", |b| {
        b.iter(|| {
            let mut sk = gsum_sketch();
            for &u in s.iter() {
                sk.update(u);
            }
            sk
        })
    });
    group.bench_function("batched", |b| {
        b.iter(|| {
            let mut sk = gsum_sketch();
            sk.update_batch(s.updates());
            sk
        })
    });
    for shards in [2usize, 4, 8] {
        group.bench_function(format!("sharded_{shards}"), |b| {
            b.iter(|| {
                ShardedIngest::new(shards)
                    .with_batch_size(2048)
                    .ingest(&mut s.source(), &gsum_sketch())
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_countsketch_ingest, bench_gsum_ingest);
criterion_main!(benches);
