//! Ingestion throughput: the hot-path matrix the repo's perf trajectory is
//! measured against.
//!
//! Variants, on the same Zipf(1.2) workload:
//!
//! * `per_update` — one `update` call per stream update (the baseline the
//!   division-free hashing speeds up).
//! * `batched_chunks` — `update_batch` in fixed-size chunks, the shape live
//!   ingestion has: per-chunk coalescing of duplicate items plus row-major
//!   counter walks.
//! * `coalesced_full` — one `update_batch` over the whole stream: the upper
//!   envelope of what coalescing buys (a Zipf head item is hashed once
//!   instead of thousands of times).
//! * `…/tabulation` — the same, with the tabulation hash backend instead of
//!   the polynomial family.
//! * `sharded_N` — `ShardedIngest` across N worker threads (wall-clock
//!   speedup needs a multi-core host; on one core it measures channel
//!   overhead).  The `onepass_gsum` sharded/pipelined rows sweep both hash
//!   backends; the `countsketch` sharded rows run polynomial only (the
//!   backend sweep lives in the single-threaded countsketch rows).
//! * `pipelined_N` — `PipelinedIngest`: one decode/coalesce stage feeding N
//!   hash+apply workers over bounded channels (same single-core caveat).
//! * `hash_stage` / `apply_stage` — the coalesced CountSketch hot loop split
//!   at the precompute-then-apply seam: `hash_stage` runs only the batched
//!   `column_sign_batch` kernels over the coalesced keys (all rows),
//!   `apply_stage` only the signed counter scatter from precomputed
//!   columns/signs.  Their ns/iter must sum to at most the
//!   `coalesced_full` row (which additionally pays the coalescing sort) —
//!   `check_bench_schema` enforces that, so a regression in either kernel
//!   is attributable from the artifact alone.
//! * `ams/eval_stage/{family}` — the AMS sign-hash evaluation stage in
//!   isolation (new in v6): one 320-counter sign bank — the shape the
//!   one-pass heavy hitter's `AmsF2Sketch` carries — evaluated over the
//!   coalesced keys with the item-outer block kernel, per sign family
//!   (`polynomial4` and `tabulation`).  This is the kernel hot-path round 4
//!   restructured, so the row makes a regression in the SoA/AVX-512 lowering
//!   attributable without rerunning the whole estimator.  The polynomial4
//!   row is bounded above by `onepass_gsum/coalesced_full/*` (the full
//!   pipeline pays at least one such bank pass), which `check_bench_schema`
//!   enforces.
//!
//! Besides the console table, the bench writes a machine-readable
//! `BENCH_ingest.json` at the workspace root (override the path with the
//! `BENCH_INGEST_JSON` env var) so CI can upload it and perf regressions are
//! visible per PR.  Set `BENCH_INGEST_QUICK=1` for a fast smoke run.

use gsum_core::{GSumConfig, OnePassGSumSketch};
use gsum_gfunc::library::PowerFunction;
use gsum_hash::{HashBackend, RowHasher, SignBank, SignFamily, SignHashBank};
use gsum_sketch::{CountSketch, CountSketchConfig};
use gsum_streams::{
    coalesce_updates, PipelinedIngest, ShardedIngest, StreamConfig, StreamGenerator, StreamSink,
    TurnstileStream, ZipfStreamGenerator,
};
use std::time::{Duration, Instant};

const DOMAIN: u64 = 1 << 12;
/// Floor on measured iterations per variant, regardless of time budget.
const MIN_ITERATIONS: u64 = 8;
const ZIPF_ALPHA: f64 = 1.2;
const CHUNK: usize = 4096;

/// Counters in the sign bank the `ams/eval_stage` rows evaluate: the
/// 64 averages × 5 medians the one-pass heavy hitter's `AmsF2Sketch`
/// carries, so the row times exactly the bank shape the estimator pays.
const AMS_BANK_COUNTERS: usize = 64 * 5;

/// `onepass_gsum/coalesced_full/polynomial` updates/sec from the committed
/// hot-path round 3 artifact (PR 8's `BENCH_ingest.json`), the baseline the
/// `speedup_gsum_round4_vs_round3` field divides against.  A hardcoded
/// constant rather than a file read so the field stays finite and
/// meaningful even when the old artifact is no longer checked out.
const ROUND3_GSUM_COALESCED_UPD_PER_SEC: f64 = 6_512_090.0;

struct BenchResult {
    name: String,
    ns_per_iter: f64,
    updates_per_sec: f64,
    iterations: u64,
}

impl BenchResult {
    /// The coalescing mode, parsed from the `family/mode/backend` name —
    /// recorded per result so the JSON is self-describing.
    fn mode(&self) -> &str {
        self.name.split('/').nth(1).unwrap_or("unknown")
    }

    /// The hash backend, parsed from the variant name (the countsketch
    /// sharded variants run the polynomial backend only).
    fn backend(&self) -> &str {
        self.name.split('/').nth(2).unwrap_or("unknown")
    }
}

/// The git commit the bench ran against, so `BENCH_ingest.json` artifacts
/// are comparable across the PR trajectory.  Tries the `GITHUB_SHA` /
/// `BENCH_GIT_COMMIT` environment (CI), then `git rev-parse HEAD`, and
/// reports `"unknown"` when neither works (e.g. a source tarball).
fn git_commit() -> String {
    for var in ["BENCH_GIT_COMMIT", "GITHUB_SHA"] {
        if let Ok(sha) = std::env::var(var) {
            if !sha.is_empty() {
                return sha;
            }
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|sha| sha.trim().to_string())
        .filter(|sha| !sha.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Time `routine` with a per-iteration `setup` whose cost (sketch
/// construction — for the tabulation backend that is filling 8 × 256
/// lookup tables per hash) is *excluded* from the measurement, so the
/// reported numbers are ingestion only.  One warm-up run, then as many
/// measured runs as fit in the budget, with a floor of
/// [`MIN_ITERATIONS`] so slow variants still average over enough runs for
/// `ns_per_iter` to be comparable across PRs (a 3-iteration sample was
/// dominated by scheduling noise).  Returns mean ns/iteration and the
/// iteration count.
fn measure<T>(
    budget: Duration,
    mut setup: impl FnMut() -> T,
    mut routine: impl FnMut(T),
) -> (f64, u64) {
    routine(setup());
    let mut measured = Duration::ZERO;
    let mut iterations = 0u64;
    let wall = Instant::now();
    while iterations < MIN_ITERATIONS || (wall.elapsed() < budget && iterations < 1_000_000) {
        let input = setup();
        let t = Instant::now();
        routine(input);
        measured += t.elapsed();
        iterations += 1;
    }
    (measured.as_nanos() as f64 / iterations as f64, iterations)
}

fn run<T>(
    results: &mut Vec<BenchResult>,
    name: &str,
    updates: usize,
    budget: Duration,
    setup: impl FnMut() -> T,
    routine: impl FnMut(T),
) {
    let (ns_per_iter, iterations) = measure(budget, setup, routine);
    let updates_per_sec = updates as f64 / (ns_per_iter / 1e9);
    println!(
        "{name:<44} {ns_per_iter:>14.0} ns/iter  {updates_per_sec:>12.3e} upd/s  ({iterations} iters)"
    );
    results.push(BenchResult {
        name: name.to_string(),
        ns_per_iter,
        updates_per_sec,
        iterations,
    });
}

fn countsketch(backend: HashBackend) -> CountSketch {
    CountSketch::new(CountSketchConfig::new(5, 1024).with_backend(backend), 3)
}

fn gsum_sketch(backend: HashBackend) -> OnePassGSumSketch<PowerFunction> {
    let config = GSumConfig::with_space_budget(DOMAIN, 0.2, 512, 11).with_hash_backend(backend);
    OnePassGSumSketch::new(PowerFunction::new(2.0), &config)
}

fn bench_countsketch(
    results: &mut Vec<BenchResult>,
    s: &TurnstileStream,
    updates: usize,
    budget: Duration,
) {
    for backend in [HashBackend::Polynomial, HashBackend::Tabulation] {
        let b = backend.name();
        run(
            results,
            &format!("countsketch/per_update/{b}"),
            updates,
            budget,
            || countsketch(backend),
            |mut cs| {
                for &u in s.iter() {
                    cs.update(u);
                }
                std::hint::black_box(&cs);
            },
        );
        run(
            results,
            &format!("countsketch/batched_chunks/{b}"),
            updates,
            budget,
            || countsketch(backend),
            |mut cs| {
                for chunk in s.updates().chunks(CHUNK) {
                    cs.update_batch(chunk);
                }
                std::hint::black_box(&cs);
            },
        );
        run(
            results,
            &format!("countsketch/coalesced_full/{b}"),
            updates,
            budget,
            || countsketch(backend),
            |mut cs| {
                cs.update_batch(s.updates());
                std::hint::black_box(&cs);
            },
        );
    }
    bench_stage_split(results, s, updates, budget);
    for shards in [2usize, 4] {
        run(
            results,
            &format!("countsketch/sharded_{shards}/polynomial"),
            updates,
            budget,
            || countsketch(HashBackend::Polynomial),
            |prototype| {
                let merged = ShardedIngest::new(shards)
                    .with_batch_size(2048)
                    .ingest(&mut s.source(), &prototype)
                    .unwrap();
                std::hint::black_box(&merged);
            },
        );
    }
}

/// Split the coalesced CountSketch hot loop at its precompute-then-apply
/// seam and time each half in isolation, per backend, over the same
/// coalesced workload `coalesced_full` ingests.  The hash stage runs the
/// batched `column_sign_batch` kernel for every row over the coalesced
/// keys; the apply stage scatters precomputed (column, sign) pairs into the
/// counter matrix with branchless signed deltas — the same i64 fast path
/// the sketch takes on small-magnitude streams.  The two halves bound the
/// `coalesced_full` row from below (it additionally pays the coalescing
/// sort), which `check_bench_schema` verifies.
fn bench_stage_split(
    results: &mut Vec<BenchResult>,
    s: &TurnstileStream,
    updates: usize,
    budget: Duration,
) {
    const ROWS: usize = 5;
    const COLUMNS: u64 = 1024;
    let coalesced = coalesce_updates(s.updates());
    let keys: Vec<u64> = coalesced.iter().map(|u| u.item).collect();
    let deltas: Vec<i64> = coalesced.iter().map(|u| u.delta).collect();
    for backend in [HashBackend::Polynomial, HashBackend::Tabulation] {
        let b = backend.name();
        let hashers: Vec<RowHasher> = (0..ROWS)
            .map(|row| RowHasher::new(backend, COLUMNS, row as u64))
            .collect();
        let mut cols: Vec<u32> = Vec::new();
        let mut signs: Vec<i64> = Vec::new();
        run(
            results,
            &format!("countsketch/hash_stage/{b}"),
            updates,
            budget,
            || (),
            |()| {
                for hasher in &hashers {
                    hasher.column_sign_batch(&keys, &mut cols, &mut signs);
                    std::hint::black_box((&cols, &signs));
                }
            },
        );
        // Precompute every row's columns and signed deltas once; the apply
        // stage then measures only the counter scatter.
        let precomputed: Vec<(Vec<u32>, Vec<i64>)> = hashers
            .iter()
            .map(|hasher| {
                let mut c = Vec::new();
                let mut sg = Vec::new();
                hasher.column_sign_batch(&keys, &mut c, &mut sg);
                let signed: Vec<i64> = sg
                    .iter()
                    .zip(&deltas)
                    .map(|(&sign, &delta)| {
                        let m = (sign - 1) >> 1;
                        (delta ^ m) - m
                    })
                    .collect();
                (c, signed)
            })
            .collect();
        run(
            results,
            &format!("countsketch/apply_stage/{b}"),
            updates,
            budget,
            || vec![0.0f64; ROWS * COLUMNS as usize],
            |mut counters| {
                for (row, (row_cols, row_deltas)) in precomputed.iter().enumerate() {
                    let row_counters =
                        &mut counters[row * COLUMNS as usize..(row + 1) * COLUMNS as usize];
                    for (&col, &delta) in row_cols.iter().zip(row_deltas) {
                        row_counters[col as usize] += delta as f64;
                    }
                }
                std::hint::black_box(&counters);
            },
        );
    }
}

/// Time the AMS sign-hash evaluation stage in isolation, per sign family:
/// the item-outer block kernel of one heavy-hitter-shaped sign bank
/// ([`AMS_BANK_COUNTERS`] counters) over the coalesced keys, including the
/// per-item key-power precompute the polynomial family pays (that is part
/// of the stage in the real `update_batch` hot loop).  Scratch buffers are
/// reused across iterations exactly as `AmsScratch` reuses them, so the
/// row measures steady-state kernel cost, not allocation.
fn bench_ams_eval_stage(
    results: &mut Vec<BenchResult>,
    s: &TurnstileStream,
    updates: usize,
    budget: Duration,
) {
    let coalesced = coalesce_updates(s.updates());
    let keys: Vec<u64> = coalesced.iter().map(|u| u.item).collect();
    for family in [SignFamily::Polynomial4, SignFamily::Tabulation] {
        let bank = SignBank::from_seed(family, 0xA115_F2F2, AMS_BANK_COUNTERS);
        let mut x1: Vec<u64> = Vec::new();
        let mut x2: Vec<u64> = Vec::new();
        let mut x3: Vec<u64> = Vec::new();
        let mut hv: Vec<u64> = Vec::new();
        let mut sign_bytes: Vec<u8> = Vec::new();
        run(
            results,
            &format!("ams/eval_stage/{}", family.name()),
            updates,
            budget,
            || (),
            |()| {
                match &bank {
                    SignBank::Polynomial(bank) => {
                        x1.clear();
                        x2.clear();
                        x3.clear();
                        for &key in &keys {
                            let (p1, p2, p3) = SignHashBank::key_powers(key);
                            x1.push(p1);
                            x2.push(p2);
                            x3.push(p3);
                        }
                        bank.eval_block(&x1, &x2, &x3, &mut sign_bytes);
                    }
                    SignBank::Tabulation(bank) => {
                        bank.eval_block(&keys, &mut hv, &mut sign_bytes);
                    }
                }
                std::hint::black_box(&sign_bytes);
            },
        );
    }
}

fn bench_gsum(
    results: &mut Vec<BenchResult>,
    s: &TurnstileStream,
    updates: usize,
    budget: Duration,
) {
    for backend in [HashBackend::Polynomial, HashBackend::Tabulation] {
        let b = backend.name();
        run(
            results,
            &format!("onepass_gsum/per_update/{b}"),
            updates,
            budget,
            || gsum_sketch(backend),
            |mut sk| {
                for &u in s.iter() {
                    sk.update(u);
                }
                std::hint::black_box(&sk);
            },
        );
        run(
            results,
            &format!("onepass_gsum/batched_chunks/{b}"),
            updates,
            budget,
            || gsum_sketch(backend),
            |mut sk| {
                for chunk in s.updates().chunks(CHUNK) {
                    sk.update_batch(chunk);
                }
                std::hint::black_box(&sk);
            },
        );
        run(
            results,
            &format!("onepass_gsum/coalesced_full/{b}"),
            updates,
            budget,
            || gsum_sketch(backend),
            |mut sk| {
                sk.update_batch(s.updates());
                std::hint::black_box(&sk);
            },
        );
    }
    for backend in [HashBackend::Polynomial, HashBackend::Tabulation] {
        let b = backend.name();
        run(
            results,
            &format!("onepass_gsum/sharded_2/{b}"),
            updates,
            budget,
            || gsum_sketch(backend),
            |prototype| {
                let merged = ShardedIngest::new(2)
                    .with_batch_size(2048)
                    .ingest(&mut s.source(), &prototype)
                    .unwrap();
                std::hint::black_box(&merged);
            },
        );
        run(
            results,
            &format!("onepass_gsum/pipelined_2/{b}"),
            updates,
            budget,
            || gsum_sketch(backend),
            |prototype| {
                let merged = PipelinedIngest::new(2)
                    .with_batch_size(2048)
                    .ingest(&mut s.source(), &prototype)
                    .unwrap();
                std::hint::black_box(&merged);
            },
        );
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The headline speedup ratios the artifact carries alongside the raw rows.
struct Speedups {
    coalesced_vs_per_update: f64,
    tabulation_vs_polynomial: f64,
    gsum_coalesced_vs_per_update: f64,
    gsum_round4_vs_round3: f64,
}

fn write_json(
    path: &std::path::Path,
    results: &[BenchResult],
    updates: usize,
    quick: bool,
    speedups: &Speedups,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"bench_ingest\",\n");
    out.push_str("  \"schema_version\": 6,\n");
    // Provenance metadata: which commit produced these numbers, which hash
    // backends and coalescing modes the matrix swept, how many hardware
    // threads the host offered (sharded/pipelined numbers are meaningless
    // without it — a single-core host measures channel overhead, not
    // speedup), and whether this was a quick smoke run — so the bench
    // trajectory across PRs is self-describing without consulting CI logs.
    // The backend and mode lists are collected from the recorded results,
    // so adding or dropping a bench variant keeps the meta honest without a
    // string literal to update.
    let distinct = |f: fn(&BenchResult) -> &str| {
        let mut seen: Vec<&str> = Vec::new();
        for r in results {
            let v = f(r);
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen.iter()
            .map(|v| format!("\"{}\"", json_escape(v)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    out.push_str("  \"meta\": {\n");
    out.push_str(&format!(
        "    \"git_commit\": \"{}\",\n",
        json_escape(&git_commit())
    ));
    out.push_str(&format!(
        "    \"backends\": [{}],\n",
        distinct(BenchResult::backend)
    ));
    out.push_str(&format!(
        "    \"default_backend\": \"{}\",\n",
        HashBackend::default().name()
    ));
    out.push_str(&format!(
        "    \"coalescing_modes\": [{}],\n",
        distinct(BenchResult::mode)
    ));
    out.push_str(&format!(
        "    \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    ));
    out.push_str(&format!("    \"quick\": {quick}\n"));
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"workload\": {{\"distribution\": \"zipf\", \"alpha\": {ZIPF_ALPHA}, \"domain\": {DOMAIN}, \"updates\": {updates}, \"chunk\": {CHUNK}}},\n"
    ));
    out.push_str(&format!(
        "  \"speedup_coalesced_vs_per_update\": {:.3},\n",
        speedups.coalesced_vs_per_update
    ));
    out.push_str(&format!(
        "  \"speedup_tabulation_vs_polynomial_per_update\": {:.3},\n",
        speedups.tabulation_vs_polynomial
    ));
    out.push_str(&format!(
        "  \"speedup_gsum_coalesced_vs_per_update\": {:.3},\n",
        speedups.gsum_coalesced_vs_per_update
    ));
    out.push_str(&format!(
        "  \"speedup_gsum_round4_vs_round3\": {:.3},\n",
        speedups.gsum_round4_vs_round3
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mode\": \"{}\", \"backend\": \"{}\", \"ns_per_iter\": {:.1}, \"updates_per_sec\": {:.1}, \"iterations\": {}}}{}\n",
            json_escape(&r.name),
            json_escape(r.mode()),
            json_escape(r.backend()),
            r.ns_per_iter,
            r.updates_per_sec,
            r.iterations,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Fetch a named result; a missing name is a bug in this bench (the name
/// tables drifted), and silently emitting NaN would corrupt the JSON
/// artifact CI uploads — fail loudly instead.
fn lookup(results: &[BenchResult], name: &str) -> f64 {
    results
        .iter()
        .find(|r| r.name == name)
        .map(|r| r.ns_per_iter)
        .unwrap_or_else(|| panic!("bench result {name:?} missing — variant names drifted"))
}

/// Like [`lookup`], but returns the updates/sec rate — the unit the
/// cross-artifact round-over-round comparison is phrased in.
fn lookup_rate(results: &[BenchResult], name: &str) -> f64 {
    results
        .iter()
        .find(|r| r.name == name)
        .map(|r| r.updates_per_sec)
        .unwrap_or_else(|| panic!("bench result {name:?} missing — variant names drifted"))
}

fn main() {
    let quick = std::env::var("BENCH_INGEST_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let (updates, budget) = if quick {
        (20_000usize, Duration::from_millis(60))
    } else {
        (50_000usize, Duration::from_millis(300))
    };
    let s = ZipfStreamGenerator::new(StreamConfig::new(DOMAIN, updates), ZIPF_ALPHA, 7).generate();

    let mut results = Vec::new();
    println!("bench_ingest: zipf({ZIPF_ALPHA}) domain={DOMAIN} updates={updates} quick={quick}\n");
    bench_countsketch(&mut results, &s, updates, budget);
    bench_ams_eval_stage(&mut results, &s, updates, budget);
    bench_gsum(&mut results, &s, updates, budget);

    let per_update = lookup(&results, "countsketch/per_update/polynomial");
    let coalesced = lookup(&results, "countsketch/coalesced_full/polynomial");
    let per_update_tab = lookup(&results, "countsketch/per_update/tabulation");
    let gsum_per_update = lookup(&results, "onepass_gsum/per_update/polynomial");
    let gsum_coalesced = lookup(&results, "onepass_gsum/coalesced_full/polynomial");
    let speedup = per_update / coalesced;
    let tab_speedup = per_update / per_update_tab;
    let gsum_speedup = gsum_per_update / gsum_coalesced;
    let round4_speedup = lookup_rate(&results, "onepass_gsum/coalesced_full/polynomial")
        / ROUND3_GSUM_COALESCED_UPD_PER_SEC;
    println!("\ncoalesced-batched vs per-update CountSketch speedup: {speedup:.2}x");
    println!("tabulation vs polynomial per-update speedup: {tab_speedup:.2}x");
    println!("coalesced vs per-update onepass_gsum speedup: {gsum_speedup:.2}x");
    println!("onepass_gsum coalesced_full, round 4 vs round 3 artifact: {round4_speedup:.2}x");

    let path = std::env::var("BENCH_INGEST_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_ingest.json")
        });
    let speedups = Speedups {
        coalesced_vs_per_update: speedup,
        tabulation_vs_polynomial: tab_speedup,
        gsum_coalesced_vs_per_update: gsum_speedup,
        gsum_round4_vs_round3: round4_speedup,
    };
    match write_json(&path, &results, updates, quick, &speedups) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
