//! Recursive-sketch ablation cost (E9's throughput counterpart): estimation
//! time as the number of subsampling levels grows.

use criterion::{criterion_group, criterion_main, Criterion};
use gsum_core::{GSumConfig, GSumEstimator, OnePassGSum};
use gsum_gfunc::library::PowerFunction;
use gsum_streams::{StreamConfig, StreamGenerator, ZipfStreamGenerator};

fn bench_recursive(c: &mut Criterion) {
    let domain = 1u64 << 10;
    let stream = ZipfStreamGenerator::new(StreamConfig::new(domain, 30_000), 1.2, 11).generate();
    let mut group = c.benchmark_group("recursive_levels");
    for &levels in &[2usize, 6, 12] {
        let cfg = GSumConfig::with_space_budget(domain, 0.2, 512, 5).with_levels(levels);
        let est = OnePassGSum::new(PowerFunction::new(2.0), cfg);
        group.bench_function(format!("levels_{levels}"), |b| {
            b.iter(|| est.estimate(&stream))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recursive);
criterion_main!(benches);
