//! Cost of the zero-one-law property analyzers and the full classifier (E1's
//! throughput counterpart).

use criterion::{criterion_group, criterion_main, Criterion};
use gsum_gfunc::library::{OscillatingQuadratic, PowerFunction};
use gsum_gfunc::properties::{analyze_predictable, analyze_slow_dropping, analyze_slow_jumping};
use gsum_gfunc::{classify, PropertyConfig};

fn bench_classify(c: &mut Criterion) {
    let cfg = PropertyConfig::default();
    let quad = PowerFunction::new(2.0);
    let osc = OscillatingQuadratic::sqrt();
    c.bench_function("analyze_slow_jumping_x2", |b| {
        b.iter(|| analyze_slow_jumping(&quad, &cfg))
    });
    c.bench_function("analyze_slow_dropping_x2", |b| {
        b.iter(|| analyze_slow_dropping(&quad, &cfg))
    });
    c.bench_function("analyze_predictable_osc_sqrt", |b| {
        b.iter(|| analyze_predictable(&osc, &cfg))
    });
    c.bench_function("classify_full_x2", |b| b.iter(|| classify(&quad, &cfg)));
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
