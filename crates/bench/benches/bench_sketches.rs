//! Throughput of the sketch substrates: CountSketch / Count-Min / AMS updates
//! and CountSketch heavy-hitter extraction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gsum_sketch::{AmsF2Sketch, CountMinSketch, CountSketch, CountSketchConfig, StreamSink};
use gsum_streams::{StreamConfig, StreamGenerator, ZipfStreamGenerator};

fn stream() -> gsum_streams::TurnstileStream {
    ZipfStreamGenerator::new(StreamConfig::new(1 << 12, 50_000), 1.2, 7).generate()
}

fn bench_updates(c: &mut Criterion) {
    let s = stream();
    let mut group = c.benchmark_group("sketch_update_50k");
    group.bench_function("countsketch_5x1024", |b| {
        b.iter_batched(
            || CountSketch::new(CountSketchConfig::new(5, 1024), 3),
            |mut cs| cs.process_stream(&s),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("countmin_5x1024", |b| {
        b.iter_batched(
            || CountMinSketch::new(5, 1024, 3),
            |mut cm| cm.process_stream(&s),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("ams_64x5", |b| {
        b.iter_batched(
            || AmsF2Sketch::new(64, 5, 3).unwrap(),
            |mut ams| ams.process_stream(&s),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let s = stream();
    let mut cs = CountSketch::new(CountSketchConfig::new(5, 1024), 3);
    cs.process_stream(&s);
    c.bench_function("countsketch_top64_of_4096", |b| {
        b.iter(|| cs.top_candidates(0..(1u64 << 12), 64))
    });
}

criterion_group!(benches, bench_updates, bench_extraction);
criterion_main!(benches);
