//! End-to-end g-SUM estimation cost (E2's throughput counterpart): one-pass
//! and two-pass estimators at two space budgets.

use criterion::{criterion_group, criterion_main, Criterion};
use gsum_core::{GSumConfig, GSumEstimator, OnePassGSum, TwoPassGSum};
use gsum_gfunc::library::{PowerFunction, SpamDiscountUtility};
use gsum_streams::{StreamConfig, StreamGenerator, ZipfStreamGenerator};

fn bench_gsum(c: &mut Criterion) {
    let domain = 1u64 << 10;
    let stream = ZipfStreamGenerator::new(StreamConfig::new(domain, 30_000), 1.2, 5).generate();
    let mut group = c.benchmark_group("gsum_30k_updates");
    for &columns in &[128usize, 1024] {
        let cfg = GSumConfig::with_space_budget(domain, 0.2, columns, 7);
        let one = OnePassGSum::new(PowerFunction::new(2.0), cfg.clone());
        group.bench_function(format!("one_pass_x2_cols{columns}"), |b| {
            b.iter(|| one.estimate(&stream))
        });
        let two = TwoPassGSum::new(PowerFunction::new(2.0), cfg.clone());
        group.bench_function(format!("two_pass_x2_cols{columns}"), |b| {
            b.iter(|| two.estimate(&stream))
        });
        let utility = OnePassGSum::new(SpamDiscountUtility::new(50), cfg);
        group.bench_function(format!("one_pass_utility_cols{columns}"), |b| {
            b.iter(|| utility.estimate(&stream))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gsum);
criterion_main!(benches);
