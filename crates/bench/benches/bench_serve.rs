//! Serving-layer throughput and latency: the reactor trajectory's numbers.
//!
//! Drives a real [`GsumServer`] over loopback TCP and measures the three
//! quantities the reactor rewrite is about:
//!
//! * `serve/connections_per_sec` — sequential connect → `COUNT` → close
//!   round trips: accept + register + parse + reply + reap, the per-
//!   connection overhead that used to be a thread spawn.
//! * `serve/ingest_updates_per_sec/clients_N` — N concurrent clients each
//!   streaming a framed Zipf workload to completion (`OK` acknowledged),
//!   under `ServePolicy::MergeCompleted` so the per-worker shard path — the
//!   tentpole — is the one being measured.
//! * `serve/{est,count}_latency_{p50,p99}` — point-query round-trip
//!   latency over one persistent connection against a server holding
//!   ingested state, in microseconds.
//! * `serve/est_latency_{p50,p99}/<function>` (schema v2) — the same
//!   round trip through the named-estimator path: the server serves a
//!   [`SketchRegistry`] with two G functions sharing one ingest
//!   substrate, and each registered function gets its own
//!   `EST <function>` latency rows, so a regression in the registry
//!   lookup or the per-function cover shows up per function.
//!
//! **Caveat for reading the numbers:** on a single-core CI host the
//! loopback numbers measure reactor and channel overhead, not parallel
//! speedup — client threads, the reactor and the fold workers all share
//! one core.  Compare runs only against the same `available_parallelism`
//! (recorded in `meta`).
//!
//! Besides the console table, the bench writes a machine-readable
//! `BENCH_serve.json` at the workspace root (override the path with the
//! `BENCH_SERVE_JSON` env var) so CI can upload it and serving regressions
//! are visible per PR.  Set `BENCH_SERVE_QUICK=1` for a fast smoke run.

use gsum_core::GSumConfig;
use gsum_gfunc::library::{CappedLinear, PowerFunction};
use gsum_hash::HashBackend;
use gsum_serve::{GsumServer, Response, ServeConfig, ServePolicy, SketchRegistry};
use gsum_streams::wire::encode_updates;
use gsum_streams::{StreamConfig, StreamGenerator, ZipfStreamGenerator};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

const DOMAIN: u64 = 1 << 12;
const ZIPF_ALPHA: f64 = 1.2;
const WORKERS: usize = 2;
const MAX_CONNECTIONS: usize = 64;

struct BenchRow {
    name: String,
    kind: &'static str, // "throughput" | "latency"
    value: f64,
    unit: &'static str,
    samples: u64,
}

/// The git commit the bench ran against (same resolution order as
/// `bench_ingest`): `BENCH_GIT_COMMIT` / `GITHUB_SHA`, then `git
/// rev-parse HEAD`, then `"unknown"`.
fn git_commit() -> String {
    for var in ["BENCH_GIT_COMMIT", "GITHUB_SHA"] {
        if let Ok(sha) = std::env::var(var) {
            if !sha.is_empty() {
                return sha;
            }
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|sha| sha.trim().to_string())
        .filter(|sha| !sha.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The served state: a registry with two G functions over one shared
/// substrate, so the named-estimator rows measure the registry path and
/// ingest throughput still pays for exactly one CountSketch stack.
fn proto() -> SketchRegistry {
    let config = GSumConfig::with_space_budget(DOMAIN, 0.2, 512, 11)
        .with_hash_backend(HashBackend::Polynomial);
    let mut registry = SketchRegistry::new();
    registry
        .register(PowerFunction::new(2.0), &config)
        .expect("register default function");
    registry
        .register(CappedLinear::new(100), &config)
        .expect("register second function");
    assert_eq!(registry.substrate_count(), 1, "one shared substrate");
    registry
}

/// The registered function names, registration order (default first).
fn function_names() -> Vec<String> {
    proto().function_names()
}

fn serve_config() -> ServeConfig {
    ServeConfig::new()
        .with_policy(ServePolicy::MergeCompleted)
        .with_workers(WORKERS)
        .with_max_connections(MAX_CONNECTIONS)
        .with_checkpoint_every(1 << 14)
        // Errors are unexpected in a bench; surface instead of counting.
        .with_observer(|event| eprintln!("[bench_serve] {event}"))
}

/// Boot a server, run `body` against its address, `QUIT` it, and return
/// the body's output.
fn with_server<T>(body: impl FnOnce(SocketAddr) -> T) -> T {
    let server = GsumServer::boot(proto(), serve_config(), None).expect("boot");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::scope(|scope| {
        let server = &server;
        let handle = scope.spawn(move || server.serve(listener).expect("serve"));
        let out = body(addr);
        let mut quit = TcpStream::connect(addr).expect("connect");
        writeln!(quit, "QUIT").expect("send");
        let mut line = String::new();
        BufReader::new(quit).read_line(&mut line).expect("read");
        assert!(handle.join().expect("server thread").clean_shutdown);
        out
    })
}

/// One command round trip on an established connection.  The command goes
/// out in a single `write` call: two small writes ("EST" then "\n") would
/// let Nagle hold the newline until the peer's delayed ACK, and the bench
/// would measure the kernel's 40ms timer instead of the server.
fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, command: &str) -> Response {
    stream
        .write_all(format!("{command}\n").as_bytes())
        .expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    Response::parse(&line).expect("parse")
}

/// Stream pre-encoded bytes and wait for the `OK` acknowledgement.
fn stream_client(addr: SocketAddr, bytes: &[u8]) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("stream");
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("read");
    assert!(
        matches!(Response::parse(&line), Ok(Response::Ok(_))),
        "ingest must be acknowledged, got {line:?}"
    );
}

fn encode_workload(updates: usize, seed: u64) -> Vec<u8> {
    let stream =
        ZipfStreamGenerator::new(StreamConfig::new(DOMAIN, updates), ZIPF_ALPHA, seed).generate();
    encode_updates(DOMAIN, stream.updates()).expect("encode")
}

fn record(rows: &mut Vec<BenchRow>, row: BenchRow) {
    println!(
        "{:<44} {:>14.1} {:<7} ({} samples)",
        row.name, row.value, row.unit, row.samples
    );
    rows.push(row);
}

/// Sequential connect → `COUNT` → close churn.
fn bench_connections(rows: &mut Vec<BenchRow>, connections: u64) {
    let elapsed = with_server(|addr| {
        let start = Instant::now();
        for _ in 0..connections {
            let mut stream = TcpStream::connect(addr).expect("connect");
            writeln!(stream, "COUNT").expect("send");
            let mut line = String::new();
            BufReader::new(stream).read_line(&mut line).expect("read");
        }
        start.elapsed()
    });
    record(
        rows,
        BenchRow {
            name: "serve/connections_per_sec".into(),
            kind: "throughput",
            value: connections as f64 / elapsed.as_secs_f64(),
            unit: "conn/s",
            samples: connections,
        },
    );
}

/// `clients` concurrent framed streams to completion, averaged over
/// `iterations` rounds against one server.
fn bench_ingest(rows: &mut Vec<BenchRow>, clients: usize, updates: usize, iterations: u64) {
    let workloads: Vec<Vec<u8>> = (0..clients)
        .map(|c| encode_workload(updates, 7 + c as u64))
        .collect();
    let mut total = Duration::ZERO;
    with_server(|addr| {
        for _ in 0..iterations {
            let barrier = std::sync::Barrier::new(clients);
            let start = Instant::now();
            std::thread::scope(|scope| {
                for bytes in &workloads {
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        stream_client(addr, bytes);
                    });
                }
            });
            total += start.elapsed();
        }
    });
    let streamed = (clients * updates) as u64 * iterations;
    record(
        rows,
        BenchRow {
            name: format!("serve/ingest_updates_per_sec/clients_{clients}"),
            kind: "throughput",
            value: streamed as f64 / total.as_secs_f64(),
            unit: "upd/s",
            samples: streamed,
        },
    );
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

/// Query latency percentiles over one persistent connection, against a
/// server that has already ingested a workload (so `EST` answers from
/// non-trivial state).
fn bench_query_latency(rows: &mut Vec<BenchRow>, warm_updates: usize, queries: usize) {
    // Each probe is (command line, latency family, row suffix): the bare
    // queries keep their v1 row names, and every registered function adds
    // `EST <function>` probes whose rows carry the name as a suffix.
    let mut probes: Vec<(String, &'static str, String)> = vec![
        ("EST".into(), "est", String::new()),
        ("COUNT".into(), "count", String::new()),
    ];
    for name in function_names() {
        probes.push((format!("EST {name}"), "est", format!("/{name}")));
    }
    let samples = with_server(|addr| {
        stream_client(addr, &encode_workload(warm_updates, 3));
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut latencies: Vec<Vec<f64>> = Vec::new();
        for (command, _, _) in &probes {
            let mut us: Vec<f64> = (0..queries)
                .map(|_| {
                    let t = Instant::now();
                    let response = roundtrip(&mut stream, &mut reader, command);
                    let elapsed = t.elapsed().as_secs_f64() * 1e6;
                    assert!(
                        !matches!(response, Response::Err(_)),
                        "query failed: {response:?}"
                    );
                    elapsed
                })
                .collect();
            us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            latencies.push(us);
        }
        latencies
    });
    for ((_, family, suffix), us) in probes.iter().zip(&samples) {
        for (p, label) in [(0.5, "p50"), (0.99, "p99")] {
            record(
                rows,
                BenchRow {
                    name: format!("serve/{family}_latency_{label}{suffix}"),
                    kind: "latency",
                    value: percentile(us, p),
                    unit: "us",
                    samples: us.len() as u64,
                },
            );
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &std::path::Path,
    rows: &[BenchRow],
    quick: bool,
    connections: u64,
    updates_per_client: usize,
    queries: usize,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"bench_serve\",\n");
    out.push_str("  \"schema_version\": 2,\n");
    // Provenance: commit, reactor topology (worker-pool size and the
    // connection cap the shed path enforces), the registered estimator
    // names (v2 — the per-function latency rows are unreadable without
    // them), host parallelism (the single-core caveat above — these
    // numbers are uninterpretable without it), and whether this was a
    // quick smoke run.
    out.push_str("  \"meta\": {\n");
    out.push_str(&format!(
        "    \"git_commit\": \"{}\",\n",
        json_escape(&git_commit())
    ));
    out.push_str(&format!("    \"workers\": {WORKERS},\n"));
    out.push_str(&format!("    \"max_connections\": {MAX_CONNECTIONS},\n"));
    out.push_str("    \"policy\": \"merge_completed\",\n");
    out.push_str(&format!(
        "    \"functions\": [{}],\n",
        function_names()
            .iter()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "    \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    ));
    out.push_str(&format!("    \"quick\": {quick}\n"));
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"workload\": {{\"distribution\": \"zipf\", \"alpha\": {ZIPF_ALPHA}, \"domain\": {DOMAIN}, \"updates_per_client\": {updates_per_client}, \"connections\": {connections}, \"query_samples\": {queries}}},\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"kind\": \"{}\", \"value\": {:.2}, \"unit\": \"{}\", \"samples\": {}}}{}\n",
            json_escape(&r.name),
            r.kind,
            r.value,
            r.unit,
            r.samples,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn main() {
    let quick = std::env::var("BENCH_SERVE_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let (connections, updates, iterations, queries) = if quick {
        (200u64, 10_000usize, 2u64, 300usize)
    } else {
        (2_000u64, 100_000usize, 5u64, 2_000usize)
    };
    println!(
        "bench_serve: zipf({ZIPF_ALPHA}) domain={DOMAIN} workers={WORKERS} \
         updates_per_client={updates} quick={quick}\n"
    );

    let mut rows = Vec::new();
    bench_connections(&mut rows, connections);
    for clients in [1usize, 4] {
        bench_ingest(&mut rows, clients, updates, iterations);
    }
    bench_query_latency(&mut rows, updates, queries);

    let path = std::env::var("BENCH_SERVE_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
        });
    match write_json(&path, &rows, quick, connections, updates, queries) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
