//! Sketchable distances (the Guha–Indyk question, §1): approximate
//! `d(u, v) = Σ_i g(|u_i − v_i|)` between two streams without storing either
//! frequency vector, by exploiting the linearity of the turnstile model.
//!
//! ```text
//! cargo run --release --example distance_sketch
//! ```

use zerolaw::core::apps::{exact_distance, sketched_distance};
use zerolaw::prelude::*;

fn main() {
    let domain = 1u64 << 12;
    let u = ZipfStreamGenerator::new(StreamConfig::new(domain, 80_000), 1.2, 1).generate();
    let v = ZipfStreamGenerator::new(StreamConfig::new(domain, 80_000), 1.2, 2).generate();
    println!(
        "two Zipf streams of {} updates each over {} items",
        u.len(),
        domain
    );

    let config = GSumConfig::with_space_budget(domain, 0.2, 2048, 5);
    let cases: Vec<(&str, Box<dyn zerolaw::gfunc::GFunction>)> = vec![
        (
            "squared Euclidean (g = x^2)",
            Box::new(PowerFunction::new(2.0)),
        ),
        ("Manhattan (g = x)", Box::new(PowerFunction::new(1.0))),
        (
            "soft Hamming (g = ln^2(1+x))",
            Box::new(PolylogFunction::new(2.0)),
        ),
    ];

    for (name, g) in &cases {
        let truth = exact_distance(g.as_ref(), &u, &v);
        let estimator = OnePassGSum::new(g.as_ref(), config.clone());
        let approx = sketched_distance(&estimator, &u, &v, 3);
        println!(
            "{name:<30} exact = {truth:>14.1}  sketch = {approx:>14.1}  rel.err = {:.3}",
            (approx - truth).abs() / truth
        );
    }

    println!(
        "\n(the same machinery rejects un-sketchable distances: g = x^3 is not \
         slow-jumping, so no sub-polynomial sketch exists — Theorem 3)"
    );
}
