//! Quickstart: approximate `Σ g(|v_i|)` on a skewed turnstile stream with the
//! one-pass universal sketch and compare against the exact value.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use zerolaw::prelude::*;

fn main() {
    let domain = 1u64 << 12;
    let mut generator = ZipfStreamGenerator::new(StreamConfig::new(domain, 100_000), 1.2, 7);
    let stream = generator.generate();
    println!(
        "stream: {} updates over a domain of {} items (max frequency {})",
        stream.len(),
        domain,
        stream.frequency_vector().max_abs_frequency()
    );

    // Three tractable functions from the paper's examples.
    let functions: Vec<(&str, Box<dyn zerolaw::gfunc::GFunction>)> = vec![
        (
            "x^1.5 (fractional moment)",
            Box::new(PowerFunction::new(1.5)),
        ),
        (
            "x^2 lg(1+x)",
            Box::new(zerolaw::gfunc::LEta::new(PowerFunction::new(2.0), 1.0)),
        ),
        (
            "spam-discount utility",
            Box::new(SpamDiscountUtility::new(64)),
        ),
    ];

    for (name, g) in &functions {
        let truth = exact_gsum(g.as_ref(), &stream.frequency_vector());
        let config = GSumConfig::with_space_budget(domain, 0.2, 2048, 11);
        let estimator = OnePassGSum::new(g.as_ref(), config);
        let estimate = estimator.estimate_median(&stream, 3);
        let rel = (estimate - truth).abs() / truth;
        println!(
            "{name:<28} exact = {truth:>14.1}  sketch = {estimate:>14.1}  rel.err = {:.3}  space = {} words",
            rel,
            estimator.space_words()
        );
    }
}
