//! Checkpoint / restore and the sharded two-pass coordinator.
//!
//! A linear sketch's whole state is seeds + counters + phase, so it
//! serializes to a compact byte string and rehydrates bit-for-bit.  This
//! example demonstrates the two workflows that buys:
//!
//! 1. **Stop/resume**: a long ingestion is interrupted after a bounded
//!    number of updates, its state parked on disk, and later continued from
//!    the bytes — landing in exactly the state an uninterrupted run reaches.
//! 2. **The sharded two-pass protocol**: phase 1 sharded across workers,
//!    one `begin_second_pass()` transition on the merged state, and the
//!    frozen between-pass state redistributed to the phase-2 workers as
//!    checkpoint bytes (what a multi-machine coordinator broadcasts over
//!    the wire).
//!
//! Run with `cargo run --example checkpoint_restore`.

use zerolaw::prelude::*;

fn main() {
    let domain = 1u64 << 10;
    let config = GSumConfig::with_space_budget(domain, 0.2, 256, 42);
    let g = PowerFunction::new(2.0);

    // ------------------------------------------------------------------
    // 1. Stop, checkpoint to disk, resume.
    // ------------------------------------------------------------------
    let prototype = OnePassGSumSketch::new(g, &config);
    let ingest = ShardedIngest::new(4).with_batch_size(1024);

    // Reference: the uninterrupted run.
    let mut source = ZipfStreamGenerator::new(StreamConfig::new(domain, 100_000), 1.2, 7);
    let uninterrupted = ingest
        .ingest(&mut source, &prototype)
        .expect("clones always merge");

    // Interrupted run: absorb the first 40k updates, then stop.
    source.reset();
    let (partial, consumed) = ingest
        .ingest_limited(&mut source, &prototype, 40_000)
        .expect("clones always merge");
    let path = std::env::temp_dir().join("zerolaw_checkpoint_demo.bin");
    let bytes = partial.to_checkpoint_bytes().expect("serialize");
    std::fs::write(&path, &bytes).expect("write checkpoint");
    println!(
        "checkpointed after {consumed} updates: {} bytes at {}",
        bytes.len(),
        path.display()
    );

    // ...possibly much later, on a different machine: restore and continue
    // with the rest of the stream (the source is already positioned there).
    let saved = std::fs::read(&path).expect("read checkpoint");
    let resumed = ingest
        .resume(&mut source, &prototype, &mut saved.as_slice())
        .expect("resume from checkpoint");
    assert_eq!(
        resumed.estimate().to_bits(),
        uninterrupted.estimate().to_bits(),
        "resumed run must match the uninterrupted run bit for bit"
    );
    println!(
        "resumed estimate {:.4e} == uninterrupted estimate (bit-exact)",
        resumed.estimate()
    );
    let _ = std::fs::remove_file(&path);

    // ------------------------------------------------------------------
    // 2. The sharded two-pass coordinator.
    // ------------------------------------------------------------------
    let stream = ZipfStreamGenerator::new(StreamConfig::new(domain, 60_000), 1.2, 9).generate();

    // Single-threaded reference: pass 1, transition, pass 2 (a replay).
    let mut reference = TwoPassGSumSketch::new(g, &config);
    reference.process_stream(&stream);
    reference.begin_second_pass();
    reference.process_stream(&stream);

    // Coordinated: phase 1 sharded, one transition on the merged state,
    // phase-2 workers rehydrated from the frozen state's checkpoint bytes.
    let prototype = TwoPassGSumSketch::new(g, &config);
    let (coordinated, frozen) = ShardedTwoPassCoordinator::new(4)
        .run(&prototype, &mut stream.source(), &mut stream.source())
        .expect("coordinator run");
    assert_eq!(
        coordinated.estimate().to_bits(),
        reference.estimate().to_bits(),
        "coordinated two-pass must match single-threaded bit for bit"
    );
    println!(
        "sharded two-pass estimate {:.4e} == single-threaded (bit-exact); \
         frozen state broadcast as {} bytes",
        coordinated.estimate(),
        frozen.len()
    );

    // Ground truth for context.
    let exact = exact_gsum(&g, &stream.frequency_vector());
    println!("exact g-SUM: {exact:.4e}");
}
