//! Utility aggregates (§1.1.2): bill advertisers per click with a
//! non-monotone, spam-discounted fee schedule, computed in one pass over the
//! click stream.
//!
//! ```text
//! cargo run --release --example spam_click_billing
//! ```

use zerolaw::core::apps::ClickBilling;
use zerolaw::prelude::*;

fn main() {
    let users = 1u64 << 12;
    // Organic traffic plus three click-bots.
    let clicks = PlantedStreamGenerator::new(
        StreamConfig::new(users, 200_000),
        vec![(17, 60_000), (99, 25_000), (1_000, 12_000)],
        2024,
    )
    .generate();
    println!(
        "click log: {} clicks from up to {} users (busiest user: {} clicks)",
        clicks.len(),
        users,
        clicks.frequency_vector().max_abs_frequency()
    );

    let threshold = 200;
    let billing = ClickBilling::new(
        threshold,
        GSumConfig::with_space_budget(users, 0.2, 2048, 7),
    );
    let report = billing.bill(&clicks, 3);

    println!("\nspam threshold: {threshold} clicks per user");
    println!(
        "exact spam-discounted bill:   {:>12.1}",
        report.exact_discounted
    );
    println!(
        "sketched spam-discounted bill:{:>12.1}",
        report.estimated_discounted
    );
    println!(
        "relative error:               {:>12.4}",
        report.relative_error
    );
    println!(
        "naive capped-linear bill:     {:>12.1}",
        report.exact_capped
    );
    println!(
        "discount granted for suspected spam: {:>12.1}",
        report.exact_capped - report.exact_discounted
    );
    println!("sketch space: {} words", billing.space_words());
}
