//! Tractability audit: run the zero-one-law classifier (Theorems 2 and 3)
//! over the built-in function library and print the verdicts alongside the
//! paper's ground truth.
//!
//! ```text
//! cargo run --release --example tractability_audit
//! ```

use zerolaw::prelude::*;

fn main() {
    let config = PropertyConfig::default();
    let registry = FunctionRegistry::standard();
    println!(
        "classifying {} functions over the window [1, {}]\n",
        registry.len(),
        config.max_x
    );
    println!(
        "{:<30} {:>6} {:>6} {:>6} {:>6}  {:<18} {:<18} {:>7}",
        "function", "jump", "drop", "pred", "np", "1-pass", "2-pass", "matches"
    );
    let mut mismatches = 0;
    for (entry, report, matches) in registry.classification_table(&config) {
        println!(
            "{:<30} {:>6} {:>6} {:>6} {:>6}  {:<18} {:<18} {:>7}",
            entry.name(),
            report.slow_jumping.holds,
            report.slow_dropping.holds,
            report.predictable.holds,
            report.nearly_periodic.nearly_periodic,
            format!("{:?}", report.one_pass),
            format!("{:?}", report.two_pass),
            matches
        );
        if !matches {
            mismatches += 1;
        }
    }
    println!("\nmismatches against the paper's classification: {mismatches}");

    // Show a witness for one intractable function, as the lower-bound proofs do.
    let report = zerolaw::gfunc::classify(&PowerFunction::new(3.0), &config);
    if let Some(w) = &report.slow_jumping.witness {
        println!(
            "\nwitness that x^3 is not slow-jumping: g({}) = {:.0} exceeds \
             (y/x)^(2+a) x^a g(x) with x = {}, alpha = {}",
            w.y, w.gy, w.x, w.exponent
        );
    }
}
