//! N concurrent clients, one serving state — the merge-on-ingest proof.
//!
//! PR 4's server serialized connections: a second client waited in
//! `accept`.  The `gsum_serve` layer hands every connection its own thread
//! and folds per-client sketches into the serving state as they complete,
//! and *linearity makes the concurrency invisible in the result*: this demo
//! drives N loopback writers simultaneously and asserts the final serving
//! state is **bit-identical** to a single-threaded replay of the
//! concatenated client streams — checkpoint bytes and estimate bits, not
//! just approximately equal numbers.  (Any concatenation order gives the
//! same bytes: merging is exact integer addition in `f64`.)
//!
//! A second phase aborts one client mid-stream (connection dropped before
//! the end-of-stream frame) under [`ServePolicy::DiscardPartial`] and
//! asserts the all-or-nothing contract: the dead stream contributes
//! nothing, and the serving state equals the replay of the surviving
//! streams alone.
//!
//! Both phases run under **both hash backends** (polynomial and
//! tabulation) — determinism is a property of linearity, not of one hash
//! family.  The client count defaults to 4 and is bounded by the
//! `MULTI_CLIENT_CLIENTS` environment variable (1..=16), so the demo
//! terminates quickly on single-core CI runners.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Barrier;
use zerolaw::prelude::*;

const DOMAIN: u64 = 1 << 10;
const SEED: u64 = 42;
const UPDATES_PER_CLIENT: usize = 2_000;
const CHECKPOINT_EVERY: usize = 400;

fn prototype(backend: HashBackend) -> OnePassGSumSketch<PowerFunction> {
    let config = GSumConfig::with_space_budget(DOMAIN, 0.2, 256, SEED).with_hash_backend(backend);
    OnePassGSumSketch::new(PowerFunction::new(2.0), &config)
}

fn client_count() -> usize {
    std::env::var("MULTI_CLIENT_CLIENTS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4)
        .clamp(1, 16)
}

fn client_stream(client: usize) -> Vec<Update> {
    ZipfStreamGenerator::new(
        StreamConfig::new(DOMAIN, UPDATES_PER_CLIENT),
        1.2,
        1_000 + client as u64,
    )
    .collect_stream()
    .updates()
    .to_vec()
}

fn spawn_server_with<S: ServableSketch + 'static>(
    proto: S,
    policy: ServePolicy,
    checkpoint_path: PathBuf,
) -> (String, std::thread::JoinHandle<ServeSummary>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || {
        let config = ServeConfig::new()
            .with_policy(policy)
            .with_checkpoint_every(CHECKPOINT_EVERY)
            .with_pipeline(PipelinedIngest::new(2).with_batch_size(256));
        GsumServer::boot(proto, config, Some(checkpoint_path))
            .expect("boot server")
            .serve(listener)
            .expect("serve")
    });
    (addr, handle)
}

fn spawn_server(
    backend: HashBackend,
    policy: ServePolicy,
    checkpoint_path: PathBuf,
) -> (String, std::thread::JoinHandle<ServeSummary>) {
    spawn_server_with(prototype(backend), policy, checkpoint_path)
}

/// Send one framed stream and return the server's acknowledgement.
fn send_stream(addr: &str, updates: &[Update]) -> Response {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut read_half = BufReader::new(stream.try_clone().expect("clone socket"));
    let mut writer = FrameWriter::new(BufWriter::new(stream), DOMAIN)
        .expect("stream header")
        .with_frame_updates(128)
        .expect("frame size");
    writer.write_batch(updates).expect("send updates");
    writer.finish().expect("end-of-stream frame");
    let mut response = String::new();
    read_half.read_line(&mut response).expect("read ack");
    Response::parse(&response).expect("parse ack")
}

/// Send a stream prefix and drop the connection *without* the end-of-stream
/// frame — a producer crash as the server sees it.
fn abort_stream(addr: &str, updates: &[Update]) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = FrameWriter::new(BufWriter::new(stream), DOMAIN)
        .expect("stream header")
        .with_frame_updates(64)
        .expect("frame size");
    writer.write_batch(updates).expect("send prefix");
    writer.flush_frame().expect("flush");
    // Dropping the writer closes the socket mid-stream: truncation.
}

fn query(addr: &str, cmd: Command) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    writeln!(stream, "{cmd}").expect("send command");
    stream.flush().expect("flush");
    let mut response = String::new();
    BufReader::new(stream)
        .read_line(&mut response)
        .expect("read response");
    Response::parse(&response).expect("parse response")
}

/// Single-threaded reference: one sketch absorbing the given streams back
/// to back, and its checkpoint bytes.
fn reference_bytes(backend: HashBackend, streams: &[Vec<Update>]) -> (u64, Vec<u8>) {
    let mut single = prototype(backend);
    for stream in streams {
        for &u in stream {
            single.update(u);
        }
    }
    (
        single.estimate().to_bits(),
        single.to_checkpoint_bytes().expect("save reference"),
    )
}

fn temp_checkpoint(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "zerolaw_multi_client_{tag}_{}.ckpt",
        std::process::id()
    ))
}

/// Phase A: N concurrent clean clients must merge to exactly the
/// single-threaded replay of their concatenated streams — for each hash
/// backend.
fn concurrent_clean_clients(backend: HashBackend, clients: usize) {
    let checkpoint_path = temp_checkpoint("clean");
    let _ = std::fs::remove_file(&checkpoint_path);
    let (addr, server) = spawn_server(
        backend,
        ServePolicy::MergeCompleted,
        checkpoint_path.clone(),
    );

    let streams: Vec<Vec<Update>> = (0..clients).map(client_stream).collect();
    let barrier = Barrier::new(clients);
    std::thread::scope(|scope| {
        for stream in &streams {
            let addr = addr.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait(); // all clients hit the server at once
                match send_stream(&addr, stream) {
                    Response::Ok(_) => {}
                    other => panic!("ingest ack shape: {other:?}"),
                }
            });
        }
    });

    let total: u64 = streams.iter().map(|s| s.len() as u64).sum();
    let (expect_bits, expect_bytes) = reference_bytes(backend, &streams);

    match query(&addr, Command::Count) {
        Response::Count(n) => assert_eq!(n, total, "every client update must be durable"),
        other => panic!("COUNT reply shape: {other:?}"),
    }
    match query(&addr, Command::est()) {
        Response::Est { bits } => assert_eq!(
            bits, expect_bits,
            "concurrent merge must equal the single-threaded estimate bit-for-bit"
        ),
        other => panic!("EST reply shape: {other:?}"),
    }

    assert_eq!(query(&addr, Command::Quit), Response::Bye);
    let summary = server.join().expect("server thread");
    assert!(summary.clean_shutdown);
    assert_eq!(summary.stats.streams_completed, clients as u64);

    let envelope = CheckpointEnvelope::load(&checkpoint_path)
        .expect("load final checkpoint")
        .expect("final checkpoint exists");
    assert_eq!(envelope.durable_count(), total);
    assert_eq!(
        envelope.state_bytes(),
        expect_bytes.as_slice(),
        "serving-state checkpoint bytes must equal the single-threaded replay"
    );
    let _ = std::fs::remove_file(&checkpoint_path);
    println!(
        "multi_client: {clients} concurrent clients == single-threaded replay \
         (bit-exact, {backend:?}) ✓"
    );
}

/// Phase B: an aborted client under the all-or-nothing policy contributes
/// nothing; the survivors' merge is still bit-exact.
fn aborted_client_is_discarded_whole(backend: HashBackend, clients: usize) {
    let checkpoint_path = temp_checkpoint("abort");
    let _ = std::fs::remove_file(&checkpoint_path);
    let (addr, server) = spawn_server(
        backend,
        ServePolicy::DiscardPartial,
        checkpoint_path.clone(),
    );

    let streams: Vec<Vec<Update>> = (0..clients).map(client_stream).collect();
    let doomed = client_stream(clients + 7);
    let barrier = Barrier::new(clients + 1);
    std::thread::scope(|scope| {
        for stream in &streams {
            let addr = addr.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                match send_stream(&addr, stream) {
                    Response::Ok(_) => {}
                    other => panic!("ingest ack shape: {other:?}"),
                }
            });
        }
        let addr = addr.clone();
        let barrier = &barrier;
        let doomed = &doomed;
        scope.spawn(move || {
            barrier.wait();
            // Send most of the stream, then vanish before the end frame.
            abort_stream(&addr, &doomed[..doomed.len() / 2]);
        });
    });

    // The aborted connection may still be draining server-side; QUIT waits
    // for in-flight handlers (scope join inside serve), so the summary and
    // final checkpoint below see its resolution.
    assert_eq!(query(&addr, Command::Quit), Response::Bye);
    let summary = server.join().expect("server thread");
    assert!(summary.clean_shutdown);
    assert_eq!(summary.stats.streams_completed, clients as u64);
    assert_eq!(
        summary.stats.streams_failed, 1,
        "the aborted stream must be observed as failed"
    );
    assert!(summary.stats.updates_discarded > 0);

    let (_, expect_bytes) = reference_bytes(backend, &streams);
    let envelope = CheckpointEnvelope::load(&checkpoint_path)
        .expect("load final checkpoint")
        .expect("final checkpoint exists");
    let total: u64 = streams.iter().map(|s| s.len() as u64).sum();
    assert_eq!(
        envelope.durable_count(),
        total,
        "discarded stream must not count as durable"
    );
    assert_eq!(
        envelope.state_bytes(),
        expect_bytes.as_slice(),
        "the aborted client must leave no trace in the serving state"
    );
    let _ = std::fs::remove_file(&checkpoint_path);
    println!(
        "multi_client: aborted stream discarded whole; {clients} survivors still bit-exact \
         ({backend:?}) ✓"
    );
}

/// Phase C: multi-statistic serving.  Two G functions registered in one
/// [`SketchRegistry`] over the *same* configuration share a single ingest
/// substrate; the stream flows once, and each `EST <function>` answer must
/// equal a single-threaded, single-function replay bit-for-bit.
fn multi_statistic_serving(backend: HashBackend, clients: usize) {
    let checkpoint_path = temp_checkpoint("registry");
    let _ = std::fs::remove_file(&checkpoint_path);

    let config = GSumConfig::with_space_budget(DOMAIN, 0.2, 256, SEED).with_hash_backend(backend);
    let mut registry = SketchRegistry::new();
    registry
        .register(PowerFunction::new(2.0), &config)
        .expect("register x^2");
    registry
        .register(CappedLinear::new(100), &config)
        .expect("register capped linear");
    assert_eq!(
        registry.substrate_count(),
        1,
        "identical configurations must share one ingest substrate"
    );
    let names = registry.function_names();

    let (addr, server) = spawn_server_with(
        registry,
        ServePolicy::MergeCompleted,
        checkpoint_path.clone(),
    );

    let streams: Vec<Vec<Update>> = (0..clients).map(client_stream).collect();
    let barrier = Barrier::new(clients);
    std::thread::scope(|scope| {
        for stream in &streams {
            let addr = addr.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                match send_stream(&addr, stream) {
                    Response::Ok(_) => {}
                    other => panic!("ingest ack shape: {other:?}"),
                }
            });
        }
    });

    match query(&addr, Command::Funcs) {
        Response::Funcs(listed) => assert_eq!(listed, names, "FUNCS must list both estimators"),
        other => panic!("FUNCS reply shape: {other:?}"),
    }

    // Per-function references: each function's own single-threaded sketch
    // replaying the concatenated streams.
    for (name, reference) in [
        (names[0].as_str(), {
            let mut s = OnePassGSumSketch::new(PowerFunction::new(2.0), &config);
            streams.iter().for_each(|st| s.update_batch(st));
            s.estimate().to_bits()
        }),
        (names[1].as_str(), {
            let mut s = OnePassGSumSketch::new(CappedLinear::new(100), &config);
            streams.iter().for_each(|st| s.update_batch(st));
            s.estimate().to_bits()
        }),
    ] {
        match query(&addr, Command::est_named(name)) {
            Response::Est { bits } => assert_eq!(
                bits, reference,
                "EST {name} must equal that function's single-threaded replay bit-for-bit"
            ),
            other => panic!("EST {name} reply shape: {other:?}"),
        }
    }

    // An unregistered name earns a typed refusal, and the connection-level
    // grammar still works afterwards (the refusal does not poison parsing).
    match query(&addr, Command::est_named("no-such-g")) {
        Response::Err(reason) => assert!(reason.contains("no-such-g")),
        other => panic!("unknown-function reply shape: {other:?}"),
    }

    assert_eq!(query(&addr, Command::Quit), Response::Bye);
    let summary = server.join().expect("server thread");
    assert!(summary.clean_shutdown);
    let _ = std::fs::remove_file(&checkpoint_path);
    println!(
        "multi_client: 2 statistics served from 1 substrate, both bit-exact \
         ({backend:?}) ✓"
    );
}

fn main() {
    let clients = client_count();
    for backend in [HashBackend::Polynomial, HashBackend::Tabulation] {
        concurrent_clean_clients(backend, clients);
        aborted_client_is_discarded_whole(backend, clients);
        multi_statistic_serving(backend, clients);
    }
    println!("multi_client demo: concurrent merge-on-ingest is deterministic ✓");
}
