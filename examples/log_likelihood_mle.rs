//! Approximate maximum-likelihood estimation (§1.1.1): draw i.i.d. samples
//! from a Poisson mixture, stream them, and recover the mixture's second rate
//! by grid search over sketched log-likelihoods.
//!
//! ```text
//! cargo run --release --example log_likelihood_mle
//! ```

use zerolaw::core::apps::{MixtureSampler, MleEstimator};
use zerolaw::prelude::*;

fn main() {
    let samples = 3_000u64;
    let true_beta = 6.0;
    let true_model = PoissonMixtureNll::new(0.5, 0.5, true_beta);
    let stream = MixtureSampler::new(true_model, 42).sample_stream(samples);
    println!("drew {samples} samples from a Poisson mixture with rates (0.5, {true_beta})");

    let betas = [2.0f64, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
    let grid: Vec<PoissonMixtureNll> = betas
        .iter()
        .map(|&b| PoissonMixtureNll::new(0.5, 0.5, b))
        .collect();
    let estimator = MleEstimator::new(grid, GSumConfig::with_space_budget(samples, 0.2, 2048, 9));

    let exact = estimator.exact(&stream);
    let approx = estimator.approximate(&stream, 3);

    println!("\n{:>6} {:>16} {:>16}", "beta", "exact NLL", "sketched NLL");
    for (i, &beta) in betas.iter().enumerate() {
        println!(
            "{beta:>6} {:>16.1} {:>16.1}",
            exact.nll_values[i], approx.nll_values[i]
        );
    }
    println!(
        "\nexact MLE picks beta = {}, sketched MLE picks beta = {}",
        betas[exact.best_index], betas[approx.best_index]
    );
    println!(
        "exact NLL of the sketched choice is {:.3}x the optimum",
        exact.nll_values[approx.best_index] / exact.best_value()
    );
}
