//! A checkpointing TCP ingest server — now thin wiring over [`gsum_serve`].
//!
//! PR 4 prototyped this serving loop as ~380 lines of example code; the
//! serving layer has since been promoted into the `gsum_serve` crate
//! ([`GsumServer`], [`MergeCoordinator`](zerolaw::serve::MergeCoordinator),
//! [`CheckpointEnvelope`], the `EST`/`COUNT`/`QUIT` protocol module), and
//! this example is what remains: choosing a sketch, a policy and a
//! checkpoint path, then handing the listener over.  Connections are now
//! served **concurrently** — see `examples/multi_client.rs` for the
//! multi-client fan-in demo.
//!
//! Run with `cargo run --example ingest_server` for a self-terminating
//! loopback demo that actually kills the server mid-stream (the
//! fault-injection hook) and proves the resumed estimate matches an
//! uninterrupted single-threaded reference to the bit.  Run with
//! `--serve <addr>` to keep a server up for manual use:
//!
//! ```text
//! cargo run --example ingest_server -- --serve 127.0.0.1:7171
//! ```
//!
//! The demo uses [`ServePolicy::MergeCompleted`], the offset-replay
//! contract: completed K-slices become durable mid-stream, and after a
//! crash the client asks `COUNT` for the durable offset and replays exactly
//! the non-durable suffix.

use std::io::{BufRead, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use zerolaw::prelude::*;

const DOMAIN: u64 = 1 << 10;
const SEED: u64 = 42;
const CHECKPOINT_EVERY: usize = 500;

/// The serving sketch, reconstructed identically on every boot: same
/// function, same configuration, same seed — so a checkpoint taken by one
/// incarnation restores seamlessly into the next.
fn prototype() -> OnePassGSumSketch<PowerFunction> {
    let config = GSumConfig::with_space_budget(DOMAIN, 0.2, 256, SEED);
    OnePassGSumSketch::new(PowerFunction::new(2.0), &config)
}

fn server_config() -> ServeConfig {
    ServeConfig::new()
        .with_policy(ServePolicy::MergeCompleted)
        .with_checkpoint_every(CHECKPOINT_EVERY)
        .with_pipeline(
            PipelinedIngest::new(2)
                .with_batch_size(256)
                .with_channel_depth(4),
        )
}

// ---------------------------------------------------------------------------
// Loopback client used by the demo.
// ---------------------------------------------------------------------------

fn send_updates(addr: &str, updates: &[Update]) -> Result<Response, String> {
    let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut read_half = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = FrameWriter::new(BufWriter::new(stream), DOMAIN)
        .map_err(|e| e.to_string())?
        .with_frame_updates(128)
        .map_err(|e| e.to_string())?;
    writer.write_batch(updates).map_err(|e| e.to_string())?;
    writer.finish().map_err(|e| e.to_string())?;
    let mut response = String::new();
    read_half
        .read_line(&mut response)
        .map_err(|e| e.to_string())?;
    if response.is_empty() {
        return Err("connection closed without a response".into());
    }
    Response::parse(&response).map_err(|e| e.to_string())
}

fn query(addr: &str, cmd: Command) -> Response {
    use std::io::Write;
    let mut stream = TcpStream::connect(addr).expect("connect");
    writeln!(stream, "{cmd}").expect("send command");
    stream.flush().expect("flush");
    let mut response = String::new();
    BufReader::new(stream)
        .read_line(&mut response)
        .expect("read response");
    Response::parse(&response).expect("parse response")
}

fn spawn_server(
    checkpoint_path: PathBuf,
    crash_after: Option<u64>,
) -> (String, std::thread::JoinHandle<bool>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || {
        let mut config = server_config();
        if let Some(limit) = crash_after {
            config = config.with_crash_after(limit);
        }
        let server =
            GsumServer::boot(prototype(), config, Some(checkpoint_path)).expect("boot server");
        eprintln!(
            "[server] listening; {} updates durable from checkpoint",
            server.durable_count()
        );
        server.serve(listener).expect("serve").clean_shutdown
    });
    (addr, handle)
}

/// The self-terminating loopback demo: stream → kill → restore → replay →
/// prove bit-exactness against an uninterrupted reference.
fn loopback_demo() {
    let checkpoint_path =
        std::env::temp_dir().join(format!("zerolaw_ingest_server_{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&checkpoint_path);

    let updates =
        ZipfStreamGenerator::new(StreamConfig::new(DOMAIN, 6_000), 1.2, 7).collect_stream();
    let updates = updates.updates().to_vec();

    // Uninterrupted single-threaded reference.
    let mut reference = prototype();
    for &u in &updates {
        reference.update(u);
    }
    let reference_bits = reference.estimate().to_bits();

    // Incarnation 1: dies mid-stream, a little after update 2300 — not a
    // multiple of the checkpoint period, so un-checkpointed tail updates
    // are genuinely lost with it.
    let (addr, server) = spawn_server(checkpoint_path.clone(), Some(2_300));
    match send_updates(&addr, &updates) {
        Ok(resp) => panic!("server was supposed to die mid-stream, got {resp:?}"),
        Err(e) => println!("client: server died mid-stream as planned ({e})"),
    }
    assert!(
        !server.join().expect("server thread"),
        "incarnation 1 must report the simulated crash"
    );

    // Incarnation 2: restores the checkpoint, tells the client how much is
    // durable, and ingests the replayed suffix.
    let (addr, server) = spawn_server(checkpoint_path.clone(), None);
    let durable = match query(&addr, Command::Count) {
        Response::Count(n) => n as usize,
        other => panic!("COUNT reply shape: {other:?}"),
    };
    println!("client: {durable} updates survived the kill; replaying the rest");
    assert!(durable < updates.len(), "the kill must lose some tail");
    assert_eq!(
        durable % CHECKPOINT_EVERY,
        0,
        "durability moves in K-slices"
    );

    let ok = send_updates(&addr, &updates[durable..]).expect("replay suffix");
    assert_eq!(
        ok,
        Response::Ok(updates.len() as u64),
        "full stream durable"
    );

    let bits = match query(&addr, Command::est()) {
        Response::Est { bits } => bits,
        other => panic!("EST reply shape: {other:?}"),
    };
    assert_eq!(
        bits, reference_bits,
        "kill-then-resume must reproduce the uninterrupted estimate bit-for-bit"
    );
    println!(
        "client: resumed estimate {} == uninterrupted reference (bit-exact)",
        f64::from_bits(bits)
    );

    assert_eq!(query(&addr, Command::Quit), Response::Bye);
    assert!(server.join().expect("server thread"), "clean shutdown");
    let _ = std::fs::remove_file(&checkpoint_path);
    println!("ingest_server demo: kill + resume is bit-exact ✓");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--serve") => {
            let addr = args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7171");
            let checkpoint_path = std::env::var("INGEST_CHECKPOINT")
                .map(PathBuf::from)
                .unwrap_or_else(|_| std::env::temp_dir().join("zerolaw_ingest_server.ckpt"));
            let listener = TcpListener::bind(addr).expect("bind");
            eprintln!(
                "[server] listening on {} (checkpoints at {})",
                listener.local_addr().expect("local addr"),
                checkpoint_path.display()
            );
            let server = GsumServer::boot(prototype(), server_config(), Some(checkpoint_path))
                .expect("boot server");
            server.serve(listener).expect("serve");
        }
        _ => loopback_demo(),
    }
}
