//! A `std::net`-only TCP ingest server for framed update streams.
//!
//! This is the serving loop the wire format, the pipelined ingest and the
//! checkpoint layer were built for: a long-lived process that
//!
//! 1. accepts **framed wire streams** (`FrameWriter`/`FrameReader`) on a
//!    socket and feeds them to a `OnePassGSumSketch` through a
//!    backpressure-aware [`PipelinedIngest`] — a fast client blocks on TCP
//!    flow control instead of ballooning server memory;
//! 2. answers **point queries** on the same port (`EST` for the current
//!    g-SUM estimate, `COUNT` for the durable update count) at any moment —
//!    the sketch is queryable at every prefix;
//! 3. **checkpoints every K updates** (atomic temp-file + rename), so a
//!    killed server restarts from its last checkpoint and — after the client
//!    replays the non-durable suffix from the acknowledged offset — reaches
//!    a state **bit-for-bit identical** to a never-killed run.
//!
//! Run with `cargo run --example ingest_server` for a self-terminating
//! loopback demo that actually kills the server mid-stream and proves the
//! resumed estimate matches an uninterrupted single-threaded reference to
//! the bit.  Run with `--serve <addr>` to keep a server up for manual use:
//!
//! ```text
//! cargo run --example ingest_server -- --serve 127.0.0.1:7171
//! ```
//!
//! ## Protocol
//!
//! One TCP connection carries either a framed wire stream (recognized by the
//! 4-byte wire magic) or a single ASCII command line:
//!
//! | client sends                  | server replies                          |
//! |-------------------------------|-----------------------------------------|
//! | wire stream (magic `ZLWU`)    | `OK <durable-count>\n` after the end-of-stream frame |
//! | `EST\n`                       | `EST <f64-bits> <estimate>\n`           |
//! | `COUNT\n`                     | `COUNT <durable-count>\n`               |
//! | `QUIT\n`                      | `BYE\n`, then the server exits          |
//!
//! `COUNT` is the at-least-once resume contract: after a crash the client
//! asks how many updates are durable and replays its stream from exactly
//! that offset.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use zerolaw::prelude::*;
use zerolaw::streams::wire::WIRE_MAGIC;

const DOMAIN: u64 = 1 << 10;
const SEED: u64 = 42;
const CHECKPOINT_EVERY: usize = 500;
const PIPELINE_WORKERS: usize = 2;

/// The serving sketch, reconstructed identically on every boot: same
/// function, same configuration, same seed — so a checkpoint taken by one
/// incarnation restores seamlessly into the next.
fn prototype() -> OnePassGSumSketch<PowerFunction> {
    let config = GSumConfig::with_space_budget(DOMAIN, 0.2, 256, SEED);
    OnePassGSumSketch::new(PowerFunction::new(2.0), &config)
}

/// Durable server state: the update count followed by the sketch checkpoint.
/// The count is the offset the server acknowledges to clients — the replay
/// point after a crash.
fn save_checkpoint(
    path: &Path,
    count: u64,
    sketch: &OnePassGSumSketch<PowerFunction>,
) -> std::io::Result<()> {
    let mut bytes = count.to_le_bytes().to_vec();
    sketch
        .save(&mut bytes)
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    // Atomic publish: a crash mid-write must never leave a torn checkpoint.
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)
}

fn load_checkpoint(path: &Path) -> Option<(u64, OnePassGSumSketch<PowerFunction>)> {
    let bytes = std::fs::read(path).ok()?;
    let mut r = bytes.as_slice();
    let mut count_buf = [0u8; 8];
    r.read_exact(&mut count_buf).ok()?;
    let sketch = OnePassGSumSketch::restore(&mut r).ok()?;
    Some((u64::from_le_bytes(count_buf), sketch))
}

struct IngestServer {
    sketch: OnePassGSumSketch<PowerFunction>,
    durable_count: u64,
    pipeline: PipelinedIngest,
    checkpoint_path: PathBuf,
    checkpoint_every: usize,
    /// Demo hook: simulate `kill -9` once this many updates have arrived —
    /// the current chunk is abandoned un-merged and the process state is
    /// dropped on the floor; only the checkpoint file survives.
    kill_after: Option<u64>,
}

impl IngestServer {
    fn boot(checkpoint_path: PathBuf, kill_after: Option<u64>) -> Self {
        let (durable_count, sketch) = match load_checkpoint(&checkpoint_path) {
            Some((count, sketch)) => {
                eprintln!("[server] restored checkpoint: {count} updates durable");
                (count, sketch)
            }
            None => {
                eprintln!("[server] fresh boot (no checkpoint)");
                (0, prototype())
            }
        };
        Self {
            sketch,
            durable_count,
            pipeline: PipelinedIngest::new(PIPELINE_WORKERS)
                .with_batch_size(256)
                .with_channel_depth(4),
            checkpoint_path,
            checkpoint_every: CHECKPOINT_EVERY,
            kill_after,
        }
    }

    /// Accept connections until `QUIT` (or the simulated kill).  Returns
    /// `true` on a clean shutdown, `false` on the simulated crash.
    fn serve(&mut self, listener: TcpListener) -> bool {
        for stream in listener.incoming() {
            let stream = match stream {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("[server] accept failed: {e}");
                    continue;
                }
            };
            match self.handle_connection(stream) {
                Ok(Verdict::KeepServing) => {}
                Ok(Verdict::Quit) => return true,
                Ok(Verdict::Killed) => {
                    eprintln!("[server] simulated kill: dying without a final checkpoint");
                    return false;
                }
                Err(e) => eprintln!("[server] connection error: {e}"),
            }
        }
        true
    }

    fn handle_connection(&mut self, stream: TcpStream) -> std::io::Result<Verdict> {
        let mut reply = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream);

        // One sniff distinguishes a framed stream from a command line.
        let mut head = [0u8; 4];
        reader.read_exact(&mut head)?;
        if head == WIRE_MAGIC {
            return self.handle_ingest(head, reader, reply);
        }

        let mut line = head.to_vec();
        if !line.contains(&b'\n') {
            let mut rest = Vec::new();
            reader.read_until(b'\n', &mut rest)?;
            line.extend_from_slice(&rest);
        }
        let command = String::from_utf8_lossy(&line);
        match command.trim() {
            "EST" => {
                let est = self.sketch.estimate();
                writeln!(reply, "EST {} {est}", est.to_bits())?;
            }
            "COUNT" => writeln!(reply, "COUNT {}", self.durable_count)?,
            "QUIT" => {
                writeln!(reply, "BYE")?;
                reply.flush()?;
                return Ok(Verdict::Quit);
            }
            other => writeln!(reply, "ERR unknown command {other:?}")?,
        }
        reply.flush()?;
        Ok(Verdict::KeepServing)
    }

    /// Ingest one framed stream in checkpoint-sized slices: pipeline-ingest
    /// at most K updates into a fresh clone of the prototype, merge the
    /// slice into the serving sketch, persist, repeat.  Linearity makes each
    /// merge exact, so the serving state after any number of slices is
    /// bit-identical to single-threaded ingestion of the same prefix.
    fn handle_ingest(
        &mut self,
        magic: [u8; 4],
        reader: BufReader<TcpStream>,
        mut reply: BufWriter<TcpStream>,
    ) -> std::io::Result<Verdict> {
        let proto = prototype();
        let mut frames = match FrameReader::new((&magic[..]).chain(reader)) {
            Ok(f) => f,
            Err(e) => {
                writeln!(reply, "ERR {e}")?;
                reply.flush()?;
                return Ok(Verdict::KeepServing);
            }
        };
        loop {
            let (slice, consumed) = self
                .pipeline
                .ingest_limited(&mut frames, &proto, self.checkpoint_every)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            if consumed == 0 {
                break;
            }
            if let Some(kill_after) = self.kill_after {
                if self.durable_count + consumed as u64 > kill_after {
                    // Crash before this slice becomes durable: the merge and
                    // checkpoint below never happen, exactly like a SIGKILL
                    // between persistence points.
                    return Ok(Verdict::Killed);
                }
            }
            self.sketch
                .merge(&slice)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            self.durable_count += consumed as u64;
            save_checkpoint(&self.checkpoint_path, self.durable_count, &self.sketch)?;
        }
        match frames.finish() {
            Ok(_) => {
                eprintln!("[server] stream complete: {} durable", self.durable_count);
                writeln!(reply, "OK {}", self.durable_count)?;
            }
            Err(e) => writeln!(reply, "ERR {e}")?,
        }
        reply.flush()?;
        Ok(Verdict::KeepServing)
    }
}

enum Verdict {
    KeepServing,
    Quit,
    Killed,
}

// ---------------------------------------------------------------------------
// Loopback client used by the demo.
// ---------------------------------------------------------------------------

fn send_updates(addr: &str, updates: &[Update]) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut read_half = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = FrameWriter::new(BufWriter::new(stream), DOMAIN)
        .map_err(|e| e.to_string())?
        .with_frame_updates(128)
        .map_err(|e| e.to_string())?;
    writer.write_batch(updates).map_err(|e| e.to_string())?;
    writer.finish().map_err(|e| e.to_string())?;
    let mut response = String::new();
    read_half
        .read_line(&mut response)
        .map_err(|e| e.to_string())?;
    if response.is_empty() {
        return Err("connection closed without a response".into());
    }
    Ok(response.trim().to_string())
}

fn command(addr: &str, cmd: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(cmd.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_line(&mut response)?;
    Ok(response.trim().to_string())
}

fn spawn_server(
    checkpoint_path: PathBuf,
    kill_after: Option<u64>,
) -> (String, std::thread::JoinHandle<bool>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || {
        let mut server = IngestServer::boot(checkpoint_path, kill_after);
        server.serve(listener)
    });
    (addr, handle)
}

/// The self-terminating loopback demo: stream → kill → restore → replay →
/// prove bit-exactness against an uninterrupted reference.
fn loopback_demo() {
    let checkpoint_path =
        std::env::temp_dir().join(format!("zerolaw_ingest_server_{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&checkpoint_path);

    let updates =
        ZipfStreamGenerator::new(StreamConfig::new(DOMAIN, 6_000), 1.2, 7).collect_stream();
    let updates = updates.updates().to_vec();

    // Uninterrupted single-threaded reference.
    let mut reference = prototype();
    for &u in &updates {
        reference.update(u);
    }
    let reference_bits = reference.estimate().to_bits();

    // Incarnation 1: dies mid-stream, a little after update 2300 — not a
    // multiple of the checkpoint period, so un-checkpointed tail updates
    // are genuinely lost with it.
    let (addr, server) = spawn_server(checkpoint_path.clone(), Some(2_300));
    match send_updates(&addr, &updates) {
        Ok(resp) => panic!("server was supposed to die mid-stream, got {resp:?}"),
        Err(e) => println!("client: server died mid-stream as planned ({e})"),
    }
    assert!(
        !server.join().expect("server thread"),
        "incarnation 1 must report the simulated crash"
    );

    // Incarnation 2: restores the checkpoint, tells the client how much is
    // durable, and ingests the replayed suffix.
    let (addr, server) = spawn_server(checkpoint_path.clone(), None);
    let count_resp = command(&addr, "COUNT").expect("COUNT query");
    let durable: usize = count_resp
        .strip_prefix("COUNT ")
        .expect("COUNT reply shape")
        .parse()
        .expect("COUNT value");
    println!("client: {durable} updates survived the kill; replaying the rest");
    assert!(durable < updates.len(), "the kill must lose some tail");
    assert_eq!(
        durable % CHECKPOINT_EVERY,
        0,
        "durability moves in K-slices"
    );

    let ok = send_updates(&addr, &updates[durable..]).expect("replay suffix");
    assert_eq!(ok, format!("OK {}", updates.len()), "full stream durable");

    let est_resp = command(&addr, "EST").expect("EST query");
    let bits: u64 = est_resp
        .split_whitespace()
        .nth(1)
        .expect("EST reply shape")
        .parse()
        .expect("EST bits");
    assert_eq!(
        bits, reference_bits,
        "kill-then-resume must reproduce the uninterrupted estimate bit-for-bit"
    );
    println!(
        "client: resumed estimate {} == uninterrupted reference (bit-exact)",
        f64::from_bits(bits)
    );

    assert_eq!(command(&addr, "QUIT").expect("QUIT"), "BYE");
    assert!(server.join().expect("server thread"), "clean shutdown");
    let _ = std::fs::remove_file(&checkpoint_path);
    println!("ingest_server demo: kill + resume is bit-exact ✓");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--serve") => {
            let addr = args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7171");
            let checkpoint_path = std::env::var("INGEST_CHECKPOINT")
                .map(PathBuf::from)
                .unwrap_or_else(|_| std::env::temp_dir().join("zerolaw_ingest_server.ckpt"));
            let listener = TcpListener::bind(addr).expect("bind");
            eprintln!(
                "[server] listening on {} (checkpoints at {})",
                listener.local_addr().expect("local addr"),
                checkpoint_path.display()
            );
            IngestServer::boot(checkpoint_path, None).serve(listener);
        }
        _ => loopback_demo(),
    }
}
