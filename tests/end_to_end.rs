//! Cross-crate integration tests: streams → sketches → g-SUM estimators →
//! applications, driven through the umbrella crate's public API.

use zerolaw::core::apps::{exact_distance, sketched_distance, ClickBilling};
use zerolaw::prelude::*;

fn zipf(domain: u64, length: usize, seed: u64) -> TurnstileStream {
    ZipfStreamGenerator::new(StreamConfig::new(domain, length), 1.2, seed).generate()
}

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-12)
}

#[test]
fn one_pass_estimator_tracks_tractable_functions_end_to_end() {
    let domain = 1u64 << 10;
    let stream = zipf(domain, 30_000, 3);
    let fv = stream.frequency_vector();
    let cfg = GSumConfig::with_space_budget(domain, 0.2, 1024, 7);

    let cases: Vec<Box<dyn zerolaw::gfunc::GFunction>> = vec![
        Box::new(PowerFunction::new(2.0)),
        Box::new(PowerFunction::new(1.0)),
        Box::new(OscillatingQuadratic::log()),
        Box::new(SpamDiscountUtility::new(50)),
    ];
    for g in &cases {
        let truth = exact_gsum(g.as_ref(), &fv);
        let est = OnePassGSum::new(g.as_ref(), cfg.clone());
        let approx = est.estimate_median(&stream, 5);
        assert!(
            rel(approx, truth) < 0.35,
            "{}: {approx} vs {truth}",
            g.name()
        );
        assert_eq!(est.passes(), 1);
        // The sketch must be far smaller than the exact frequency vector for
        // wide domains... at this scale we at least check it is bounded.
        assert!(est.space_words() > 0);
    }
}

#[test]
fn two_pass_estimator_handles_the_unpredictable_function() {
    let domain = 1u64 << 10;
    let stream =
        PlantedStreamGenerator::new(StreamConfig::new(domain, 40_000), vec![(9, 90_000)], 5)
            .generate();
    let g = OscillatingQuadratic::direct();
    let truth = exact_gsum(&g, &stream.frequency_vector());
    let cfg = GSumConfig::with_space_budget(domain, 0.1, 128, 3);
    let two = TwoPassGSum::new(g, cfg);
    assert_eq!(two.passes(), 2);
    let approx = two.estimate_median(&stream, 5);
    assert!(rel(approx, truth) < 0.3, "{approx} vs {truth}");
}

#[test]
fn nearly_periodic_pipeline_end_to_end() {
    // g_np is nearly periodic (outside the zero-one law) yet 1-pass
    // tractable via the dedicated algorithm.
    let report = zerolaw::gfunc::classify(
        &GnpFunction::new(),
        &zerolaw::gfunc::properties::PropertyConfig::fast(),
    );
    assert_eq!(report.one_pass, OnePassVerdict::OutsideNormalScope);

    let domain = 1u64 << 10;
    let stream = zerolaw::streams::FrequencyPrescribedGenerator::new(
        domain,
        vec![(1024, 1), (32, 4), (3, 50), (1, 120)],
        7,
    )
    .with_bulk_updates()
    .generate();
    let truth = exact_gsum(&GnpFunction::new(), &stream.frequency_vector());
    let est = NearlyPeriodicGSum::new(GSumConfig::with_space_budget(domain, 0.2, 256, 9));
    let approx = est.estimate_median(&stream, 5);
    assert!(rel(approx, truth) < 0.4, "{approx} vs {truth}");
}

#[test]
fn distance_and_billing_applications() {
    let domain = 1u64 << 10;
    let u = zipf(domain, 20_000, 1);
    let v = zipf(domain, 20_000, 2);
    let g = PowerFunction::new(2.0);
    let truth = exact_distance(&g, &u, &v);
    let est = OnePassGSum::new(g, GSumConfig::with_space_budget(domain, 0.2, 1024, 5));
    let approx = sketched_distance(&est, &u, &v, 3);
    assert!(rel(approx, truth) < 0.35, "{approx} vs {truth}");

    let clicks =
        PlantedStreamGenerator::new(StreamConfig::new(domain, 30_000), vec![(7, 15_000)], 11)
            .generate();
    let billing = ClickBilling::new(100, GSumConfig::with_space_budget(domain, 0.2, 1024, 3));
    let report = billing.bill(&clicks, 3);
    assert!(report.relative_error < 0.3);
    assert!(report.exact_discounted < report.exact_capped);
}

#[test]
fn sketch_space_is_sublinear_in_the_domain_for_wide_universes() {
    // The whole point of the zero-one law: for a tractable function the
    // sketch is tiny compared to the universe.
    let domain = 1u64 << 22;
    let cfg = GSumConfig::with_space_budget(domain, 0.2, 1024, 1);
    let est = OnePassGSum::new(PowerFunction::new(2.0), cfg);
    let words = est.space_words();
    assert!(
        (words as u64) < domain / 16,
        "sketch uses {words} words for a domain of {domain}"
    );
}

#[test]
fn dist_counter_integrates_with_comm_instances() {
    let domain = 1u64 << 12;
    let yes = DistInstance::random(domain, 11, 9, 1, 80, 80, true, 5);
    let no = DistInstance::random(domain, 11, 9, 1, 80, 80, false, 6);
    let mut counter = zerolaw::core::DistCounter::new(domain, 11, 9, 1, 3);
    counter.process_stream(&yes.stream());
    assert_eq!(
        counter.verdict(),
        zerolaw::core::DistVerdict::HasTargetFrequency
    );
    let mut counter = zerolaw::core::DistCounter::new(domain, 11, 9, 1, 4);
    counter.process_stream(&no.stream());
    assert_eq!(
        counter.verdict(),
        zerolaw::core::DistVerdict::NoTargetFrequency
    );
}
