//! Acceptance suite for the estimator registry: one ingest stream, many
//! G functions, zero drift.
//!
//! The registry's claim is a composition of two earlier tentpole claims:
//! the one-pass substrate never evaluates its function during ingest, and
//! sharded serving folds to the same bits as a single-threaded replay.
//! Put together: a [`SketchRegistry`] with K functions registered over
//! one shared configuration ingests every decoded batch **once**, and for
//! each registered function both the `EST <function>` answer and the
//! per-function checkpoint bytes ([`SketchRegistry::checkpoint_for`])
//! must be bit-identical to a **single-function** sketch of the same
//! configuration replaying the concatenated kept updates on one thread —
//! under both hash backends and both [`ServePolicy`] values.  The
//! proptest below enforces exactly that over real loopback sockets.
//!
//! Also covered: substrate dedup (three functions, one substrate),
//! per-configuration substrate splitting, the `FUNCS` listing, unknown
//! `EST <function>` answering a typed `ERR` without poisoning the
//! connection, and the registry's composite checkpoint surviving a
//! save → restore → query round trip.

use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::time::Duration;
use zerolaw::prelude::*;
use zerolaw::streams::wire::encode_updates;

const DOMAIN: u64 = 64;
const BACKENDS: [HashBackend; 2] = [HashBackend::Polynomial, HashBackend::Tabulation];
const POLICIES: [ServePolicy; 2] = [ServePolicy::DiscardPartial, ServePolicy::MergeCompleted];

fn shared_config(backend: HashBackend) -> GSumConfig {
    GSumConfig::with_space_budget(DOMAIN, 0.25, 64, 11).with_hash_backend(backend)
}

/// The three registered functions, as type-erased [`DynG`] values in
/// registration order (index 0 is the default the bare `EST` answers).
fn functions() -> Vec<DynG> {
    vec![
        DynG::new(PowerFunction::new(2.0)),
        DynG::new(CappedLinear::new(100)),
        DynG::new(PolylogFunction::new(2.0)),
    ]
}

/// A registry with all three functions sharing one substrate key.
fn registry(backend: HashBackend) -> SketchRegistry {
    let config = shared_config(backend);
    let mut registry = SketchRegistry::new();
    for function in functions() {
        registry
            .register_dyn(function, &config)
            .expect("register function");
    }
    assert_eq!(
        registry.substrate_count(),
        1,
        "identical configurations must share one ingest substrate"
    );
    registry
}

/// Encode one client stream; `truncate_at: Some(k)` mimics a producer
/// crash (complete frames, no end-of-stream frame).
fn encode_client(updates: &[Update], truncate_at: Option<usize>) -> Vec<u8> {
    match truncate_at {
        None => encode_updates(DOMAIN, updates).expect("encode"),
        Some(k) => {
            let mut buf = Vec::new();
            let mut writer = FrameWriter::new(&mut buf, DOMAIN)
                .expect("header")
                .with_frame_updates(16)
                .expect("frame size");
            writer.write_batch(&updates[..k]).expect("prefix");
            writer.flush_frame().expect("flush");
            drop(writer); // no finish(): the stream is truncated
            buf
        }
    }
}

/// What the policy keeps of a client stream.
fn kept(updates: &[Update], cut: Option<usize>, policy: ServePolicy) -> &[Update] {
    match (cut, policy) {
        (None, _) => updates,
        (Some(k), ServePolicy::MergeCompleted) => &updates[..k],
        (Some(_), ServePolicy::DiscardPartial) => &[],
    }
}

type ClientSpec = (Vec<Update>, Option<usize>);
type RawClient = (Vec<(u64, i64)>, u64, u64);

fn client_specs(raw: &[RawClient]) -> Vec<ClientSpec> {
    raw.iter()
        .map(|(pairs, fail_die, cut_frac)| {
            let updates: Vec<Update> = pairs.iter().map(|&(i, d)| Update::new(i, d)).collect();
            let cut = (fail_die % 3 == 0).then(|| (*cut_frac as usize * updates.len()) / 10_000);
            (updates, cut)
        })
        .collect()
}

/// The per-function single-threaded references: for each registered
/// function, one **single-function** sketch (same configuration, same
/// seed) absorbing every client's kept updates in canonical order.
/// Returns each function's `(estimate bits, checkpoint bytes)` plus the
/// durable update count.
fn references(
    specs: &[ClientSpec],
    policy: ServePolicy,
    backend: HashBackend,
) -> (Vec<(u64, Vec<u8>)>, u64) {
    let config = shared_config(backend);
    let mut durable = 0u64;
    let per_function: Vec<(u64, Vec<u8>)> = functions()
        .into_iter()
        .map(|function| {
            let mut single = OnePassGSumSketch::with_seed(function, &config, config.seed);
            for (updates, cut) in specs {
                for &u in kept(updates, *cut, policy) {
                    single.update(u);
                }
            }
            let bytes = single.to_checkpoint_bytes().expect("save reference");
            (single.estimate().to_bits(), bytes)
        })
        .collect();
    for (updates, cut) in specs {
        durable += kept(updates, *cut, policy).len() as u64;
    }
    (per_function, durable)
}

/// Send one framed client stream and return the server's verdict,
/// retrying whenever the connection was load-shed instead of served.
fn run_client(addr: SocketAddr, bytes: &[u8], complete: bool) -> Response {
    for _ in 0..2_000 {
        let retry = || std::thread::sleep(Duration::from_millis(2));
        let Ok(mut stream) = TcpStream::connect(addr) else {
            retry();
            continue;
        };
        let _ = stream.write_all(bytes);
        if !complete {
            let _ = stream.shutdown(Shutdown::Write);
        }
        let mut line = String::new();
        match BufReader::new(&stream).read_line(&mut line) {
            Ok(n) if n > 0 => {}
            _ => {
                retry();
                continue;
            }
        }
        match Response::parse(&line) {
            Ok(Response::Busy(_)) => retry(),
            Ok(resp) => return resp,
            Err(_) => retry(),
        }
    }
    panic!("client never got a verdict from the server");
}

/// A persistent query connection: connect (retrying while lingering
/// client slots drain) and prove the slot with an answered bare `EST`.
fn query_connection(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>, u64) {
    for _ in 0..2_000 {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            std::thread::sleep(Duration::from_millis(2));
            continue;
        };
        writeln!(stream, "{}", Command::est()).expect("send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        match Response::parse(&line) {
            Ok(Response::Est { bits }) => return (stream, reader, bits),
            Ok(Response::Busy(_)) | Err(_) => std::thread::sleep(Duration::from_millis(2)),
            Ok(other) => panic!("unexpected reply to bare EST: {other:?}"),
        }
    }
    panic!("query connection never registered");
}

fn ask(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, command: &Command) -> Response {
    writeln!(stream, "{command}").expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    Response::parse(&line).unwrap_or_else(|e| panic!("unparseable reply {line:?}: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The acceptance claim of the registry redesign: one server, one
    /// ingest stream, three registered functions on one shared substrate
    /// — and for every function, both the `EST <function>` bits and the
    /// per-function checkpoint bytes equal that function's
    /// single-threaded single-function concat replay, under both hash
    /// backends, both policies, and varying worker-pool sizes.
    #[test]
    fn multi_g_serving_equals_per_function_single_replays(
        raw in prop::collection::vec(
            (prop::collection::vec((0..DOMAIN, -20i64..21), 1..60), 0u64..1_000, 0u64..10_000),
            1..5,
        ),
        workers in 1usize..4,
    ) {
        let specs = client_specs(&raw);
        let names: Vec<String> = functions().iter().map(|f| f.name()).collect();
        for backend in BACKENDS {
            for policy in POLICIES {
                let (expected, expect_durable) = references(&specs, policy, backend);

                let config = ServeConfig::new()
                    .with_policy(policy)
                    .with_checkpoint_every(37)
                    .with_workers(workers)
                    .with_pipeline(PipelinedIngest::new(2).with_batch_size(31))
                    .with_observer(|_| {});
                let server =
                    GsumServer::boot(registry(backend), config, None).expect("boot");
                let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
                let addr = listener.local_addr().expect("addr");

                std::thread::scope(|scope| {
                    let server = &server;
                    let handle = scope.spawn(move || server.serve(listener).expect("serve"));

                    let verdicts: Vec<Response> = std::thread::scope(|clients| {
                        let handles: Vec<_> = specs
                            .iter()
                            .map(|(updates, cut)| {
                                let bytes = encode_client(updates, *cut);
                                clients.spawn(move || run_client(addr, &bytes, cut.is_none()))
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().expect("client")).collect()
                    });
                    for ((_, cut), verdict) in specs.iter().zip(&verdicts) {
                        match cut {
                            None => prop_assert!(
                                matches!(verdict, Response::Ok(_)),
                                "complete stream must be acknowledged, got {:?}", verdict
                            ),
                            Some(_) => prop_assert!(
                                matches!(verdict, Response::Err(_)),
                                "truncated stream must be refused, got {:?}", verdict
                            ),
                        }
                    }

                    let (mut stream, mut reader, bare_bits) = query_connection(addr);

                    // FUNCS lists every registered name, default first.
                    prop_assert_eq!(
                        ask(&mut stream, &mut reader, &Command::Funcs),
                        Response::Funcs(names.clone())
                    );

                    // The bare EST answers the default (first) function.
                    prop_assert_eq!(
                        bare_bits, expected[0].0,
                        "bare EST must answer the default function's reference bits"
                    );

                    // Every named estimator answers its own single-function
                    // replay, bit for bit.
                    for (name, (bits, _)) in names.iter().zip(&expected) {
                        let reply =
                            ask(&mut stream, &mut reader, &Command::est_named(name.clone()));
                        prop_assert_eq!(
                            reply,
                            Response::Est { bits: *bits },
                            "{:?}/{:?}/{} workers: EST {} must answer the \
                             single-function replay bits",
                            policy, backend, workers, name
                        );
                    }

                    // An unknown function gets a typed ERR and the
                    // connection stays usable.
                    let unknown =
                        ask(&mut stream, &mut reader, &Command::est_named("no-such-g"));
                    match unknown {
                        Response::Err(reason) => prop_assert!(
                            reason.contains("no-such-g"),
                            "the refusal must name the function: {:?}", reason
                        ),
                        other => prop_assert!(false, "expected ERR, got {:?}", other),
                    }
                    prop_assert_eq!(
                        ask(&mut stream, &mut reader, &Command::Count),
                        Response::Count(expect_durable)
                    );
                    prop_assert_eq!(
                        ask(&mut stream, &mut reader, &Command::Quit),
                        Response::Bye
                    );

                    let summary = handle.join().expect("server thread");
                    prop_assert!(summary.clean_shutdown);
                    Ok(())
                })?;

                // The served composite state equals an in-memory registry
                // replay, and — restored from the snapshot — yields
                // per-function checkpoint bytes identical to each
                // function's single-function replay.
                let snapshot = server.coordinator().snapshot().expect("snapshot");
                prop_assert_eq!(snapshot.durable_count(), expect_durable);
                let mut replayed = registry(backend);
                for (updates, cut) in &specs {
                    replayed.update_batch(kept(updates, *cut, policy));
                }
                let replayed_bytes = replayed.to_checkpoint_bytes().expect("save replay");
                prop_assert_eq!(
                    snapshot.state_bytes(),
                    replayed_bytes.as_slice(),
                    "the composite checkpoint must equal the registry replay"
                );
                let restored: SketchRegistry =
                    snapshot.restore_state().expect("restore registry");
                for (name, (bits, bytes)) in names.iter().zip(&expected) {
                    let per_function = restored
                        .checkpoint_for(name)
                        .expect("registered name")
                        .expect("save");
                    prop_assert_eq!(
                        per_function.as_slice(), bytes.as_slice(),
                        "{:?}/{:?}: checkpoint_for({}) must equal the \
                         single-function replay bytes",
                        policy, backend, name
                    );
                    prop_assert_eq!(
                        restored.estimate_for(name).expect("registered name").to_bits(),
                        *bits
                    );
                }
            }
        }
    }
}

/// Substrate dedup and the registration error surface, no sockets: three
/// functions on one configuration share a substrate, a duplicate name is
/// refused, a mismatched domain is refused, and a distinct seed gets its
/// own substrate.
#[test]
fn registration_dedups_substrates_and_rejects_conflicts() {
    let config = shared_config(HashBackend::Polynomial);
    let mut registry = SketchRegistry::new();
    for function in functions() {
        registry.register_dyn(function, &config).expect("register");
    }
    assert_eq!(registry.len(), 3);
    assert_eq!(registry.substrate_count(), 1);
    assert_eq!(
        registry.function_names(),
        functions().iter().map(|f| f.name()).collect::<Vec<_>>()
    );

    assert_eq!(
        registry.register(PowerFunction::new(2.0), &config),
        Err(RegistryError::DuplicateFunction("x^2".into()))
    );
    let other_domain = GSumConfig::with_space_budget(DOMAIN * 2, 0.25, 64, 11);
    assert_eq!(
        registry.register(PowerFunction::new(3.0), &other_domain),
        Err(RegistryError::DomainMismatch {
            expected: DOMAIN,
            got: DOMAIN * 2,
        })
    );

    // A different seed is a different substrate key: the registry grows a
    // second substrate instead of silently sharing mismatched hashes.
    let mut reseeded = shared_config(HashBackend::Polynomial);
    reseeded.seed = 99;
    registry
        .register(PowerFunction::new(3.0), &reseeded)
        .expect("register under a second substrate");
    assert_eq!(registry.len(), 4);
    assert_eq!(registry.substrate_count(), 2);

    // Both substrates track their own estimators exactly.
    let updates: Vec<Update> = (0..40u64).map(|i| Update::new(i % DOMAIN, 3)).collect();
    registry.update_batch(&updates);
    let mut shared =
        OnePassGSumSketch::with_seed(DynG::new(CappedLinear::new(100)), &config, config.seed);
    let mut lone = OnePassGSumSketch::with_seed(DynG::new(PowerFunction::new(3.0)), &reseeded, 99);
    for &u in &updates {
        shared.update(u);
        lone.update(u);
    }
    assert_eq!(
        registry.estimate_for("min(x, 100)").map(f64::to_bits),
        Some(shared.estimate().to_bits())
    );
    assert_eq!(
        registry.estimate_for("x^3").map(f64::to_bits),
        Some(lone.estimate().to_bits())
    );
    assert_eq!(registry.estimate_for("absent"), None);
    assert!(registry.checkpoint_for("absent").is_none());
}
