//! Property tests for the batched-ingestion fast paths.
//!
//! The contract of `StreamSink::update_batch` — including the coalescing
//! overrides introduced by the hot-path overhaul — is that it is
//! *semantically identical* to updating one at a time, in order.  For
//! integer-valued turnstile streams the sketches' counters hold integers
//! that `f64` represents exactly, so the agreement must be **bit-for-bit**:
//! these tests drive every `StreamSink` in the workspace three ways
//! (per-update, one whole-stream batch, small chunked batches) and compare
//! every query down to the bits, under both the polynomial and the
//! tabulation hash backends.  The merge laws are re-checked under the
//! tabulation backend too.

use proptest::prelude::*;
use zerolaw::core::{
    DistCounter, GnpHeavyHitter, HeavyHitterSketch, NearlyPeriodicGSum, OnePassHeavyHitter,
    OnePassHeavyHitterConfig, RecursiveSketch, TwoPassHeavyHitter, TwoPassHeavyHitterConfig,
};
use zerolaw::prelude::*;
use zerolaw::sketch::{
    CountMinConfig, CountMinSketch, CountSketchConfig, HashBackend, SamplingEstimator,
};

const DOMAIN: u64 = 64;
const BACKENDS: [HashBackend; 2] = [HashBackend::Polynomial, HashBackend::Tabulation];
const SIGN_FAMILIES: [SignFamily; 2] = [SignFamily::Polynomial4, SignFamily::Tabulation];

/// Strategy: a small turnstile stream described as (item, delta) pairs
/// (delta 0 allowed — sinks must tolerate it).
fn stream_strategy(domain: u64, max_len: usize) -> impl Strategy<Value = TurnstileStream> {
    prop::collection::vec((0..domain, -50i64..50), 1..max_len).prop_map(move |pairs| {
        let mut s = TurnstileStream::new(domain);
        for (item, delta) in pairs {
            if delta != 0 {
                s.push_delta(item, delta);
            }
        }
        s
    })
}

/// Drive a fresh clone of `proto` three ways over `s` and hand each result
/// to `check` for bitwise query comparison against the per-update reference.
fn assert_batch_equivalent<S: StreamSink + Clone>(
    proto: &S,
    s: &TurnstileStream,
    check: impl Fn(&S, &S) -> Result<(), TestCaseError>,
) -> Result<(), TestCaseError> {
    let mut per_update = proto.clone();
    for &u in s.iter() {
        per_update.update(u);
    }

    let mut whole_batch = proto.clone();
    whole_batch.update_batch(s.updates());
    check(&per_update, &whole_batch)?;

    let mut chunked = proto.clone();
    for chunk in s.updates().chunks(7) {
        chunked.update_batch(chunk);
    }
    check(&per_update, &chunked)
}

/// Drive a fresh clone of `proto` three ways over `s` — per-update,
/// one whole-stream batch, and *interleaved* (alternating single updates
/// and batched chunks) — and require the checkpoint byte streams to be
/// identical.  This is the strongest form of the batching contract: the
/// reusable ingestion scratch and the i64/branchless fast paths must not
/// leak one bit into serialized state.
fn assert_checkpoint_byte_equivalent<S: StreamSink + Checkpoint + Clone>(
    proto: &S,
    s: &TurnstileStream,
) -> Result<(), TestCaseError> {
    let mut per_update = proto.clone();
    for &u in s.iter() {
        per_update.update(u);
    }
    let reference = per_update.to_checkpoint_bytes().expect("checkpoint");

    let mut whole_batch = proto.clone();
    whole_batch.update_batch(s.updates());
    prop_assert_eq!(
        &reference,
        &whole_batch.to_checkpoint_bytes().expect("checkpoint"),
        "whole-batch checkpoint bytes diverge from per-update"
    );

    let mut interleaved = proto.clone();
    for (i, chunk) in s.updates().chunks(5).enumerate() {
        if i % 2 == 0 {
            for &u in chunk {
                interleaved.update(u);
            }
        } else {
            interleaved.update_batch(chunk);
        }
    }
    prop_assert_eq!(
        &reference,
        &interleaved.to_checkpoint_bytes().expect("checkpoint"),
        "interleaved update/update_batch checkpoint bytes diverge from per-update"
    );
    Ok(())
}

fn check_estimates<S: FrequencySketch>(a: &S, b: &S) -> Result<(), TestCaseError> {
    for item in 0..DOMAIN {
        prop_assert_eq!(
            a.estimate(item).to_bits(),
            b.estimate(item).to_bits(),
            "estimates diverge on item {}",
            item
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// CountSketch: coalesced batches agree bit-for-bit under both backends,
    /// including the residual-F2 query (which exercises the scratch buffer).
    #[test]
    fn countsketch_batch_equals_single(s in stream_strategy(DOMAIN, 120), seed in 0u64..200) {
        for backend in BACKENDS {
            let proto = CountSketch::new(
                CountSketchConfig::new(3, 32).with_backend(backend),
                seed,
            );
            assert_batch_equivalent(&proto, &s, |a, b| {
                check_estimates(a, b)?;
                prop_assert_eq!(
                    a.residual_f2_excluding(&[]).to_bits(),
                    b.residual_f2_excluding(&[]).to_bits()
                );
                prop_assert_eq!(
                    a.residual_f2_excluding(&[1, 5, 9]).to_bits(),
                    b.residual_f2_excluding(&[1, 5, 9]).to_bits()
                );
                Ok(())
            })?;
        }
    }

    /// Count-Min: same agreement under both backends.
    #[test]
    fn countmin_batch_equals_single(s in stream_strategy(DOMAIN, 120), seed in 0u64..200) {
        for backend in BACKENDS {
            let proto = CountMinSketch::with_config(
                CountMinConfig::new(3, 32).with_backend(backend),
                seed,
            );
            assert_batch_equivalent(&proto, &s, check_estimates)?;
        }
    }

    /// AMS: the F2 estimate agrees bit-for-bit, under both sign families.
    #[test]
    fn ams_batch_equals_single(s in stream_strategy(DOMAIN, 120), seed in 0u64..200) {
        for family in SIGN_FAMILIES {
            let proto = AmsF2Sketch::with_sign_family(8, 3, seed, family).unwrap();
            assert_batch_equivalent(&proto, &s, |a, b| {
                prop_assert_eq!(a.estimate_f2().to_bits(), b.estimate_f2().to_bits());
                Ok(())
            })?;
        }
    }

    /// Exact tracker and sampling estimator (default batch path).
    #[test]
    fn exact_and_sampling_batch_equals_single(s in stream_strategy(DOMAIN, 120)) {
        let proto = ExactFrequencies::new(DOMAIN);
        assert_batch_equivalent(&proto, &s, |a, b| {
            prop_assert_eq!(a.vector(), b.vector());
            Ok(())
        })?;

        let proto = SamplingEstimator::new(DOMAIN, 16, 3);
        assert_batch_equivalent(&proto, &s, check_estimates)?;
    }

    /// DIST counter: coalesced batches give the same verdict state.
    #[test]
    fn dist_counter_batch_equals_single(s in stream_strategy(DOMAIN, 120), seed in 0u64..200) {
        let proto = DistCounter::new(DOMAIN, 1, 4, 2, seed);
        assert_batch_equivalent(&proto, &s, |a, b| {
            prop_assert_eq!(a.verdict(), b.verdict());
            Ok(())
        })?;
    }

    /// g_np heavy hitter: the cover (which depends on the update-time
    /// reverse hints as well as the counters) agrees exactly.
    #[test]
    fn gnp_heavy_hitter_batch_equals_single(s in stream_strategy(DOMAIN, 120), seed in 0u64..200) {
        let proto = GnpHeavyHitter::new(16, 12, seed);
        assert_batch_equivalent(&proto, &s, |a, b| {
            prop_assert_eq!(a.cover(DOMAIN), b.cover(DOMAIN));
            prop_assert_eq!(a.space_words(), b.space_words());
            Ok(())
        })?;
    }

    /// Algorithm-2 heavy hitter (CountSketch + AMS pair), both backends.
    #[test]
    fn one_pass_heavy_hitter_batch_equals_single(
        s in stream_strategy(DOMAIN, 120),
        seed in 0u64..200,
    ) {
        for backend in BACKENDS {
            let config = OnePassHeavyHitterConfig {
                rows: 3,
                columns: 32,
                candidates: 8,
                epsilon: 0.2,
                envelope_factor: 1.0,
                backend,
                sign_family: SignFamily::default(),
                hint_cap: 512,
            };
            let proto = OnePassHeavyHitter::new(PowerFunction::new(2.0), config, seed);
            assert_batch_equivalent(&proto, &s, |a, b| {
                prop_assert_eq!(a.cover(DOMAIN), b.cover(DOMAIN));
                prop_assert_eq!(
                    a.frequency_error_bound().to_bits(),
                    b.frequency_error_bound().to_bits()
                );
                Ok(())
            })?;
        }
    }

    /// The full one-pass g-SUM stack: recursive-sketch level routing plus
    /// per-level coalescing, both backends.
    #[test]
    fn one_pass_gsum_batch_equals_single(s in stream_strategy(DOMAIN, 100), seed in 0u64..100) {
        for backend in BACKENDS {
            let config = GSumConfig::with_space_budget(DOMAIN, 0.25, 32, seed)
                .with_hash_backend(backend);
            let proto = OnePassGSumSketch::new(PowerFunction::new(2.0), &config);
            assert_batch_equivalent(&proto, &s, |a, b| {
                prop_assert_eq!(a.estimate().to_bits(), b.estimate().to_bits());
                Ok(())
            })?;
        }
    }

    /// Recursive sketch: checkpoint bytes are identical whichever ingestion
    /// path filled it — the routing scratch (depth partitioning, memoized
    /// selector hashes) is pure working memory.
    #[test]
    fn recursive_sketch_checkpoint_bytes_agree(
        s in stream_strategy(DOMAIN, 100),
        seed in 0u64..100,
    ) {
        let proto = RecursiveSketch::new(DOMAIN, 4, seed, |_, level_seed| {
            GnpHeavyHitter::new(16, 12, level_seed)
        });
        assert_checkpoint_byte_equivalent(&proto, &s)?;
    }

    /// Full one-pass g-SUM stack: checkpoint bytes are identical whichever
    /// ingestion path filled it, under both hash backends — the per-level
    /// coalesce buffers, the CountSketch column scratch and the AMS
    /// i64/branchless fast path all stay out of serialized state.
    #[test]
    fn one_pass_gsum_checkpoint_bytes_agree(
        s in stream_strategy(DOMAIN, 100),
        seed in 0u64..100,
    ) {
        for backend in BACKENDS {
            let config = GSumConfig::with_space_budget(DOMAIN, 0.25, 32, seed)
                .with_hash_backend(backend);
            let proto = OnePassGSumSketch::new(PowerFunction::new(2.0), &config);
            assert_checkpoint_byte_equivalent(&proto, &s)?;
        }
    }

    /// The recursive g_np stack (Proposition 54 per level).
    #[test]
    fn nearly_periodic_sketch_batch_equals_single(
        s in stream_strategy(DOMAIN, 100),
        seed in 0u64..100,
    ) {
        let est = NearlyPeriodicGSum::new(GSumConfig::with_space_budget(DOMAIN, 0.25, 32, seed));
        let proto = est.sketch();
        assert_batch_equivalent(&proto, &s, |a, b| {
            prop_assert_eq!(a.estimate().to_bits(), b.estimate().to_bits());
            Ok(())
        })?;
    }

    /// Two-pass heavy hitter: batch equivalence holds in both phases, and
    /// the phase transition picks identical candidate sets.
    #[test]
    fn two_pass_heavy_hitter_batch_equals_single(
        s in stream_strategy(DOMAIN, 100),
        seed in 0u64..100,
    ) {
        for backend in BACKENDS {
            let config = TwoPassHeavyHitterConfig {
                rows: 3,
                columns: 32,
                candidates: 8,
                backend,
                hint_cap: 512,
            };
            let build = || TwoPassHeavyHitter::new(PowerFunction::new(2.0), config, seed);

            let mut per_update = build();
            for &u in s.iter() {
                per_update.update(u);
            }
            per_update.begin_second_pass(DOMAIN);
            for &u in s.iter() {
                per_update.update(u);
            }

            let mut batched = build();
            batched.update_batch(s.updates());
            batched.begin_second_pass(DOMAIN);
            batched.update_batch(s.updates());

            prop_assert_eq!(per_update.candidates(), batched.candidates());
            prop_assert_eq!(per_update.cover(DOMAIN), batched.cover(DOMAIN));
        }
    }

    /// The fused hash-stage kernels themselves: batched `(column, sign)` and
    /// column-only evaluation are bit-identical to the per-key
    /// `column_sign` / `column` calls they replace, under both backends,
    /// over key slices that mix duplicates, key 0, the domain boundary and
    /// arbitrary 64-bit keys (exercising the reduction folds), at column
    /// counts spanning the Lemire bucketing range the sketches use.
    #[test]
    fn row_hasher_batch_kernels_equal_per_key(
        keys in prop::collection::vec((0u64..DOMAIN, 0u64..8), 0..80).prop_map(|pairs| {
            pairs
                .into_iter()
                .map(|(key, variant)| match variant {
                    // Boundary keys and a fixed key (forcing duplicates)
                    // are interleaved with in-domain and arbitrary 64-bit
                    // keys so one slice exercises every reduction path.
                    0 => 0u64,
                    1 => DOMAIN - 1,
                    2 => 7,
                    3 => key.wrapping_mul(0x9E37_79B9_7F4A_7C15) | (1 << 63),
                    _ => key,
                })
                .collect::<Vec<u64>>()
        }),
        columns in 1u64..2048,
        seed in 0u64..200,
    ) {
        for backend in BACKENDS {
            let hasher = RowHasher::new(backend, columns, seed);
            let mut cols = Vec::new();
            let mut signs = Vec::new();
            hasher.column_sign_batch(&keys, &mut cols, &mut signs);
            prop_assert_eq!(cols.len(), keys.len());
            prop_assert_eq!(signs.len(), keys.len());
            for (i, &key) in keys.iter().enumerate() {
                let (col, sign) = hasher.column_sign(key);
                prop_assert_eq!(
                    (cols[i] as u64, signs[i]),
                    (col, sign),
                    "fused batch kernel diverges at key {} under {:?}",
                    key,
                    backend
                );
            }
            let mut only_cols = Vec::new();
            hasher.column_batch(&keys, &mut only_cols);
            for (i, &key) in keys.iter().enumerate() {
                prop_assert_eq!(
                    only_cols[i] as u64,
                    hasher.column(key),
                    "column-only batch kernel diverges at key {} under {:?}",
                    key,
                    backend
                );
            }
        }
    }

    /// The item-outer sign block kernels themselves: for both sign families,
    /// the packed `items × counters` sign matrix is bit-identical to per-item
    /// evaluation (`SignHashBank::eval_with` for the polynomial family,
    /// `TabSignBank::sign_at` for tabulation) over adversarial key slices —
    /// key 0, the domain boundary, high-bit patterns and forced duplicates —
    /// at bank sizes off the 8-wide block boundary and batch lengths from 1
    /// through odd non-powers-of-two.
    #[test]
    fn sign_block_kernels_equal_per_item(
        keys in prop::collection::vec((0u64..DOMAIN, 0u64..8), 1..81).prop_map(|pairs| {
            pairs
                .into_iter()
                .map(|(key, variant)| match variant {
                    // Boundary keys and a fixed key (forcing duplicates)
                    // interleaved with in-domain and arbitrary high-bit
                    // 64-bit keys, so one slice stresses every fold path.
                    0 => 0u64,
                    1 => DOMAIN - 1,
                    2 => 7,
                    3 => key.wrapping_mul(0x9E37_79B9_7F4A_7C15) | (1 << 63),
                    4 => u64::MAX - key,
                    _ => key,
                })
                .collect::<Vec<u64>>()
        }),
        bank_len in 1usize..40,
        seed in 0u64..200,
    ) {
        use zerolaw::hash::SIGN_BLOCK;
        let n = keys.len();
        for family in SIGN_FAMILIES {
            let bank = SignBank::from_seed(family, seed, bank_len);
            let mut sign_bytes = Vec::new();
            match &bank {
                SignBank::Polynomial(poly) => {
                    let (mut x1, mut x2, mut x3) = (Vec::new(), Vec::new(), Vec::new());
                    for &k in &keys {
                        let (a, b, c) = SignHashBank::key_powers(k);
                        x1.push(a);
                        x2.push(b);
                        x3.push(c);
                    }
                    poly.eval_block(&x1, &x2, &x3, &mut sign_bytes);
                    // The packed bits must be the parity of the exact field
                    // element `eval_with` computes, not merely sign-equal.
                    for i in 0..bank_len {
                        let row = &sign_bytes[(i / SIGN_BLOCK) * n..(i / SIGN_BLOCK) * n + n];
                        for (t, &key) in keys.iter().enumerate() {
                            let value = SignHashBank::eval_with(
                                poly.coefficients_at(i),
                                SignHashBank::key_powers(key),
                            );
                            prop_assert_eq!(
                                u64::from((row[t] >> (i % SIGN_BLOCK)) & 1),
                                value & 1,
                                "polynomial block bit diverges at hash {}, key {}",
                                i,
                                key
                            );
                        }
                    }
                }
                SignBank::Tabulation(tab) => {
                    let mut hv = Vec::new();
                    tab.eval_block(&keys, &mut hv, &mut sign_bytes);
                    for i in 0..bank_len {
                        let row = &sign_bytes[(i / SIGN_BLOCK) * n..(i / SIGN_BLOCK) * n + n];
                        for (t, &key) in keys.iter().enumerate() {
                            let got = (((row[t] >> (i % SIGN_BLOCK)) & 1) as i64) * 2 - 1;
                            prop_assert_eq!(
                                got,
                                tab.sign_at(i, key),
                                "tabulation block bit diverges at hash {}, key {}",
                                i,
                                key
                            );
                        }
                    }
                }
            }
            prop_assert_eq!(sign_bytes.len(), bank.blocks() * n);
            // Every bank-level query agrees with the packed matrix too.
            for i in [0, bank_len - 1] {
                let row = &sign_bytes[(i / SIGN_BLOCK) * n..(i / SIGN_BLOCK) * n + n];
                for (t, &key) in keys.iter().enumerate() {
                    let got = (((row[t] >> (i % SIGN_BLOCK)) & 1) as i64) * 2 - 1;
                    prop_assert_eq!(got, bank.sign_at_key(i, key));
                }
            }
        }
    }

    /// The merge laws hold under the tabulation backend too: merging shard
    /// sketches equals the sketch of the concatenated stream, and the full
    /// g-SUM sketch merges to the single-threaded state.
    #[test]
    fn tabulation_merge_laws(s in stream_strategy(DOMAIN, 120), seed in 0u64..200) {
        let mid = s.len() / 2;
        let (front, back) = s.updates().split_at(mid);

        let cfg = CountSketchConfig::new(3, 32)
            .with_backend(HashBackend::Tabulation);
        let mut whole = CountSketch::new(cfg, seed);
        whole.process_stream(&s);
        let mut a = CountSketch::new(cfg, seed);
        a.update_batch(front);
        let mut b = CountSketch::new(cfg, seed);
        b.update_batch(back);
        a.merge(&b).unwrap();
        check_estimates(&whole, &a)?;

        let gs_config = GSumConfig::with_space_budget(DOMAIN, 0.25, 32, seed)
            .with_hash_backend(HashBackend::Tabulation);
        let proto = OnePassGSumSketch::new(PowerFunction::new(2.0), &gs_config);
        let mut single = proto.clone();
        single.process_stream(&s);
        let mut left = proto.clone();
        left.update_batch(front);
        let mut right = proto.clone();
        right.update_batch(back);
        left.merge(&right).unwrap();
        prop_assert_eq!(left.estimate().to_bits(), single.estimate().to_bits());
    }
}

/// Extreme deltas defeat the `max|Δ|·n < 2^52` gate, so the CountSketch and
/// Count-Min batch paths must take their `f64` fallback branch — and still
/// agree with per-update ingestion on every estimate, bit for bit.  Outside
/// the exact-integer regime f64 addition is order-sensitive, so the batches
/// use distinct items in ascending order: coalescing is then a no-op and
/// each counter sees the identical addend sequence on both paths, which is
/// the strongest claim that survives non-exact magnitudes.  A second small
/// batch checks the gate decision is per-batch: the same sketch flips from
/// fallback to fast path across calls without divergence.
#[test]
fn huge_deltas_take_the_fallback_and_still_agree() {
    let huge: Vec<Update> = vec![
        Update::new(3, i64::MIN + 1),
        Update::new(9, (1i64 << 53) + 1),
        Update::new(40, -(1i64 << 60)),
    ];
    let small: Vec<Update> = (0..32u64).map(|i| Update::new(i, 3 - i as i64)).collect();

    for backend in BACKENDS {
        let cs_proto = CountSketch::new(CountSketchConfig::new(3, 32).with_backend(backend), 11);
        let cm_proto =
            CountMinSketch::with_config(CountMinConfig::new(3, 32).with_backend(backend), 11);

        let mut cs_ref = cs_proto.clone();
        let mut cm_ref = cm_proto.clone();
        for &u in huge.iter().chain(small.iter()) {
            cs_ref.update(u);
            cm_ref.update(u);
        }

        // One batch per regime: fallback for the huge half, fast path for
        // the small half.
        let mut cs_batched = cs_proto.clone();
        let mut cm_batched = cm_proto.clone();
        cs_batched.update_batch(&huge);
        cs_batched.update_batch(&small);
        cm_batched.update_batch(&huge);
        cm_batched.update_batch(&small);

        for item in 0..DOMAIN {
            assert_eq!(
                cs_ref.estimate(item).to_bits(),
                cs_batched.estimate(item).to_bits(),
                "CountSketch {backend:?} diverges on item {item} with extreme deltas"
            );
            assert_eq!(
                cm_ref.estimate(item).to_bits(),
                cm_batched.estimate(item).to_bits(),
                "Count-Min {backend:?} diverges on item {item} with extreme deltas"
            );
        }
    }
}

/// `i64::MAX`-scale deltas: `max|Δ| · n` overflows a `u64` product outright,
/// so this is the regression test that the gate computation itself survives
/// pathological magnitudes (it must *answer* `false`, not wrap around to a
/// small product and take the overflowing i64 path).  `±(i64::MAX − 1)`
/// converts to the exact f64 `2^63`, so every fallback addend is exact and
/// per-update and batched ingestion still agree bit for bit — for AMS,
/// CountSketch and Count-Min, under both sign families.
#[test]
fn max_scale_deltas_overflow_proof_gate_and_agree() {
    let extreme: Vec<Update> = vec![
        Update::new(3, i64::MAX - 1),
        Update::new(40, -(i64::MAX - 1)),
    ];

    for family in SIGN_FAMILIES {
        let ams_proto = AmsF2Sketch::with_sign_family(8, 3, 17, family).unwrap();
        let mut ams_ref = ams_proto.clone();
        for &u in &extreme {
            ams_ref.update(u);
        }
        let mut ams_batched = ams_proto.clone();
        ams_batched.update_batch(&extreme);
        assert_eq!(
            ams_ref.estimate_f2().to_bits(),
            ams_batched.estimate_f2().to_bits(),
            "AMS {} diverges under i64::MAX-scale deltas",
            family.name()
        );
    }

    for backend in BACKENDS {
        let cs_proto = CountSketch::new(CountSketchConfig::new(3, 32).with_backend(backend), 17);
        let cm_proto =
            CountMinSketch::with_config(CountMinConfig::new(3, 32).with_backend(backend), 17);
        let mut cs_ref = cs_proto.clone();
        let mut cm_ref = cm_proto.clone();
        for &u in &extreme {
            cs_ref.update(u);
            cm_ref.update(u);
        }
        let mut cs_batched = cs_proto.clone();
        let mut cm_batched = cm_proto.clone();
        cs_batched.update_batch(&extreme);
        cm_batched.update_batch(&extreme);
        for item in 0..DOMAIN {
            assert_eq!(
                cs_ref.estimate(item).to_bits(),
                cs_batched.estimate(item).to_bits(),
                "CountSketch {backend:?} diverges on item {item} at i64::MAX scale"
            );
            assert_eq!(
                cm_ref.estimate(item).to_bits(),
                cm_batched.estimate(item).to_bits(),
                "Count-Min {backend:?} diverges on item {item} at i64::MAX scale"
            );
        }
    }
}

/// Backend mismatches are merge errors: a polynomial sketch must refuse a
/// tabulation sketch even when shape and seed agree.
#[test]
fn merge_rejects_backend_mismatch() {
    let poly = CountSketch::new(CountSketchConfig::new(3, 32), 7);
    let tab = CountSketch::new(
        CountSketchConfig::new(3, 32).with_backend(HashBackend::Tabulation),
        7,
    );
    let mut a = poly.clone();
    assert!(a.merge(&tab).is_err());

    let cm_poly = CountMinSketch::with_config(CountMinConfig::new(2, 16), 5);
    let cm_tab = CountMinSketch::with_config(
        CountMinConfig::new(2, 16).with_backend(HashBackend::Tabulation),
        5,
    );
    let mut c = cm_poly.clone();
    assert!(c.merge(&cm_tab).is_err());
}

/// Sign-family mismatches are merge errors too, at every layer that embeds
/// an AMS bank: the raw sketch and the one-pass heavy hitter (whose config
/// inequality catches it) must both refuse, even with identical shapes and
/// seeds.
#[test]
fn merge_rejects_sign_family_mismatch() {
    let mut ams_poly = AmsF2Sketch::with_sign_family(8, 3, 7, SignFamily::Polynomial4).unwrap();
    let ams_tab = AmsF2Sketch::with_sign_family(8, 3, 7, SignFamily::Tabulation).unwrap();
    assert!(ams_poly.merge(&ams_tab).is_err());

    let config = OnePassHeavyHitterConfig::new(3, 32, 8, 0.2, 1.0);
    let mut hh_poly = OnePassHeavyHitter::new(PowerFunction::new(2.0), config, 7);
    let hh_tab = OnePassHeavyHitter::new(
        PowerFunction::new(2.0),
        config.with_sign_family(SignFamily::Tabulation),
        7,
    );
    assert!(hh_poly.merge(&hh_tab).is_err());
}

/// Sharded ingestion stays exact under the tabulation backend end to end.
#[test]
fn sharded_tabulation_ingest_matches_single_threaded() {
    let domain = 1u64 << 8;
    let config = GSumConfig::with_space_budget(domain, 0.2, 64, 29)
        .with_hash_backend(HashBackend::Tabulation);
    let prototype = OnePassGSumSketch::new(PowerFunction::new(2.0), &config);

    let mut gen = ZipfStreamGenerator::new(StreamConfig::new(domain, 20_000), 1.2, 3);
    let mut single = prototype.clone();
    gen.feed(&mut single);

    for shard_count in [2usize, 4] {
        gen.reset();
        let merged = ShardedIngest::new(shard_count)
            .with_batch_size(512)
            .ingest(&mut gen, &prototype)
            .unwrap();
        assert_eq!(
            merged.estimate().to_bits(),
            single.estimate().to_bits(),
            "sharded ({shard_count}) tabulation ingestion must match single-threaded"
        );
    }
}
