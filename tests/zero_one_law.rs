//! Integration tests for the zero-one laws themselves: the classifier's
//! verdicts line up with what the algorithms and lower-bound reductions
//! actually do.

use zerolaw::comm::{IndexInstance, SketchDistinguisher};
use zerolaw::gfunc::library::InversePowerFunction;
use zerolaw::prelude::*;

#[test]
fn classification_agrees_with_paper_for_the_whole_registry() {
    let registry = FunctionRegistry::standard();
    let table = registry.classification_table(&PropertyConfig::fast());
    let mismatches: Vec<String> = table
        .iter()
        .filter(|(_, _, ok)| !ok)
        .map(|(e, r, _)| format!("{}: {}", e.name(), r.summary_row()))
        .collect();
    assert!(mismatches.is_empty(), "{}", mismatches.join("\n"));
}

#[test]
fn tractable_verdict_implies_accurate_one_pass_estimation() {
    // Take a verdict from the classifier and check the matching algorithm
    // delivers: the law's "1" direction.
    let g = OscillatingQuadratic::log();
    let report = zerolaw::gfunc::classify(&g, &PropertyConfig::fast());
    assert_eq!(report.one_pass, OnePassVerdict::Tractable);

    let domain = 1u64 << 10;
    let stream = ZipfStreamGenerator::new(StreamConfig::new(domain, 30_000), 1.3, 9).generate();
    let truth = exact_gsum(&g, &stream.frequency_vector());
    let est = OnePassGSum::new(g, GSumConfig::with_space_budget(domain, 0.2, 1024, 3));
    let approx = est.estimate_median(&stream, 5);
    assert!((approx - truth).abs() / truth < 0.35, "{approx} vs {truth}");
}

#[test]
fn intractable_verdict_shows_up_on_the_index_reduction() {
    // The law's "0" direction, empirically: 1/x is not slow-dropping.  The
    // INDEX reduction produces two worlds whose exact g-SUMs differ by a
    // constant factor (so the exact statistic distinguishes them perfectly),
    // while a small sketch fails to deliver a (1 ± ε)-approximation of the
    // g-SUM on these very streams — which is exactly what Lemma 23 says must
    // happen for any sub-polynomial-space algorithm.
    let g = InversePowerFunction::new(1.0);
    let report = zerolaw::gfunc::classify(&g, &PropertyConfig::fast());
    assert_eq!(report.one_pass, OnePassVerdict::Intractable);

    let n = 256u64;
    let exact = SketchDistinguisher::run(
        25,
        |t| IndexInstance::random(n, false, t).reduction_stream(n, 1),
        |t| IndexInstance::random(n, true, t).reduction_stream(n, 1),
        |_t, s| exact_gsum(&InversePowerFunction::new(1.0), &s.frequency_vector()),
    );
    assert!(
        exact.advantage > 0.95,
        "exact advantage {}",
        exact.advantage
    );

    // A deliberately small sketch: its g-SUM estimates on the reduction
    // streams are far outside the (1 ± ε) band.
    let sketch = OnePassGSum::new(
        InversePowerFunction::new(1.0),
        GSumConfig::with_space_budget(n, 0.2, 16, 3).with_levels(4),
    );
    let mut errors: Vec<f64> = (0..25u64)
        .map(|t| {
            let stream = IndexInstance::random(n, true, t).reduction_stream(n, 1);
            let truth = exact_gsum(&InversePowerFunction::new(1.0), &stream.frequency_vector());
            (sketch.estimate_with_seed(&stream, t) - truth).abs() / truth
        })
        .collect();
    errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median_error = errors[errors.len() / 2];
    assert!(
        median_error > 0.5,
        "a 16-column sketch should not approximate 1/x-SUM on the INDEX streams, \
         but its median relative error is only {median_error}"
    );
}

#[test]
fn predictability_is_what_separates_one_pass_from_two() {
    // (2 + sin √x) x²: 2-pass tractable, 1-pass intractable.
    let g = OscillatingQuadratic::sqrt();
    let report = zerolaw::gfunc::classify(&g, &PropertyConfig::fast());
    assert_eq!(report.one_pass, OnePassVerdict::Intractable);
    assert_eq!(report.two_pass, TwoPassVerdict::Tractable);

    // And the two-pass algorithm indeed nails a stream whose dominant item
    // sits at an adversarial frequency.
    let domain = 1u64 << 10;
    let stream =
        PlantedStreamGenerator::new(StreamConfig::new(domain, 30_000), vec![(4, 70_001)], 13)
            .generate();
    let truth = exact_gsum(&g, &stream.frequency_vector());
    let two = TwoPassGSum::new(g, GSumConfig::with_space_budget(domain, 0.1, 128, 5));
    let approx = two.estimate_median(&stream, 5);
    assert!((approx - truth).abs() / truth < 0.3, "{approx} vs {truth}");
}

#[test]
fn l_eta_transformation_preserves_normal_tractability() {
    // Theorem 31: applying L_eta to a tractable normal function keeps it
    // tractable (and normal).
    let base = PowerFunction::new(2.0);
    let transformed = zerolaw::gfunc::LEta::new(base, 1.0);
    let report = zerolaw::gfunc::classify(&transformed, &PropertyConfig::fast());
    assert_eq!(report.one_pass, OnePassVerdict::Tractable);
    assert!(report.is_normal());
}

#[test]
fn l_eta_transformation_breaks_near_periodicity() {
    // Theorem 30: L_eta(g_np) is no longer nearly periodic (and is not
    // slow-dropping, hence intractable).
    let transformed = zerolaw::gfunc::LEta::new(GnpFunction::new(), 1.0);
    let report = zerolaw::gfunc::classify(&transformed, &PropertyConfig::fast());
    assert!(report.is_normal());
    assert_eq!(report.one_pass, OnePassVerdict::Intractable);
    assert!(!report.slow_dropping.holds);
}
