//! Property-based invariants spanning the workspace: linearity of the
//! sketches, order-insensitivity, exactness of the recursive estimator under
//! exact covers, and class-G structural requirements.

use proptest::prelude::*;
use zerolaw::core::heavy_hitters::{GCover, HeavyHitterSketch};
use zerolaw::core::RecursiveSketch;
use zerolaw::prelude::*;
use zerolaw::sketch::{CountSketch, CountSketchConfig};

/// Strategy: a small turnstile stream described as (item, delta) pairs.
fn stream_strategy(domain: u64, max_len: usize) -> impl Strategy<Value = TurnstileStream> {
    prop::collection::vec((0..domain, -50i64..50), 0..max_len).prop_map(move |pairs| {
        let mut s = TurnstileStream::new(domain);
        for (item, delta) in pairs {
            if delta != 0 {
                s.push_delta(item, delta);
            }
        }
        s
    })
}

/// An exact heavy-hitter oracle reporting every item (weights g = x^2).
struct ExactOracle(std::collections::HashMap<u64, i64>);

impl StreamSink for ExactOracle {
    fn update(&mut self, update: Update) {
        *self.0.entry(update.item).or_insert(0) += update.delta;
    }
}

impl HeavyHitterSketch for ExactOracle {
    fn cover(&self, _domain: u64) -> GCover {
        GCover::from_pairs(
            self.0
                .iter()
                .filter(|(_, &v)| v != 0)
                .map(|(&i, &v)| (i, (v * v) as f64))
                .collect(),
        )
    }
    fn space_words(&self) -> usize {
        2 * self.0.len()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The frequency vector is a linear function of the stream: shuffling
    /// updates never changes it, and concatenation adds coordinate-wise.
    #[test]
    fn frequency_vector_is_linear(s1 in stream_strategy(64, 60), s2 in stream_strategy(64, 60), seed in 0u64..1000) {
        let shuffled = s1.shuffled(seed);
        prop_assert_eq!(s1.frequency_vector(), shuffled.frequency_vector());

        let mut concat = s1.clone();
        concat.extend_from(&s2);
        let direct = concat.frequency_vector();
        let mut summed = s1.frequency_vector();
        for (item, v) in s2.frequency_vector().iter() {
            summed.apply(item, v);
        }
        prop_assert_eq!(direct, summed);
    }

    /// CountSketch is a linear sketch: processing a stream or any reordering
    /// of it yields identical estimates for every item.
    #[test]
    fn countsketch_is_order_insensitive(s in stream_strategy(64, 80), seed in 0u64..1000) {
        let cfg = CountSketchConfig::new(3, 32);
        let mut a = CountSketch::new(cfg, 7);
        let mut b = CountSketch::new(cfg, 7);
        a.process_stream(&s);
        b.process_stream(&s.shuffled(seed));
        for item in 0..64u64 {
            prop_assert!((a.estimate(item) - b.estimate(item)).abs() < 1e-9);
        }
    }

    /// With exact per-level covers, the recursive estimator reproduces the
    /// exact g-SUM (g = x^2) for every stream — the combination identity
    /// behind Theorem 13.
    #[test]
    fn recursive_estimator_is_exact_under_exact_covers(s in stream_strategy(128, 80), seed in 0u64..1000) {
        let mut rs = RecursiveSketch::new(128, 8, seed, |_, _| ExactOracle(Default::default()));
        rs.process_stream(&s);
        let truth = exact_gsum(&PowerFunction::new(2.0), &s.frequency_vector());
        let est = rs.estimate();
        prop_assert!((est - truth).abs() <= 1e-6 * truth.abs().max(1.0),
            "estimate {} vs truth {}", est, truth);
    }

    /// Exact g-SUM is invariant under the turnstile encoding of the same
    /// frequency vector (unit insertions vs bulk updates).
    #[test]
    fn exact_gsum_depends_only_on_the_frequency_vector(values in prop::collection::vec(1i64..40, 1..20)) {
        let domain = values.len() as u64;
        let mut bulk = TurnstileStream::new(domain);
        let mut units = TurnstileStream::new(domain);
        for (i, &v) in values.iter().enumerate() {
            bulk.push_delta(i as u64, v);
            for _ in 0..v {
                units.push(Update::insert(i as u64));
            }
        }
        let g = SpamDiscountUtility::new(10);
        let a = exact_gsum(&g, &bulk.frequency_vector());
        let b = exact_gsum(&g, &units.frequency_vector());
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// Every registry function satisfies the class-G structural requirements
    /// on arbitrary probe points: g(0) = 0 and g(x) > 0 for x > 0.
    #[test]
    fn registry_functions_stay_in_class_g(x in 1u64..100_000) {
        let registry = FunctionRegistry::standard();
        for entry in registry.iter() {
            prop_assert_eq!(entry.function.eval(0), 0.0);
            prop_assert!(entry.function.eval(x) > 0.0, "{} at {}", entry.name(), x);
        }
    }

    /// The AMS estimate of F2 is exactly v^2 whenever the stream has a single
    /// non-zero coordinate, for any value and any seed.
    #[test]
    fn ams_exact_on_single_coordinates(item in 0u64..1000, value in 1i64..10_000, seed in 0u64..500) {
        let mut s = TurnstileStream::new(1024);
        s.push_delta(item, value);
        let mut ams = AmsF2Sketch::new(8, 3, seed).unwrap();
        ams.process_stream(&s);
        let expect = (value as f64) * (value as f64);
        prop_assert!((ams.estimate_f2() - expect).abs() < 1e-6);
    }
}
