//! Property tests for the versioned snapshot/restore layer.
//!
//! The checkpoint contract is *bit-exactness*: for every estimator state
//! object, `save` at an arbitrary stream prefix + `restore` + replay of the
//! suffix must yield the identical estimate (and identical counters) to the
//! uninterrupted run.  These tests drive every `StreamSink` in the workspace
//! through that interruption, under both hash backends and — for the
//! two-pass states — in both phases.  Corruption tests check that truncated
//! bytes, a wrong format version, a wrong state kind and a mangled
//! hash-backend tag surface as errors instead of panics.
//!
//! The sharded two-pass coordinator's acceptance criterion is also proven
//! here: phase 1 sharded, one transition on the merged state, phase-2 shards
//! rehydrated from the frozen state's checkpoint bytes — bit-identical to
//! the single-threaded two-pass run on Zipf and adversarial workloads.

use proptest::prelude::*;
use zerolaw::core::{
    Checkpoint, DistCounter, GnpHeavyHitter, HeavyHitterSketch, NearlyPeriodicGSum,
    OnePassHeavyHitter, OnePassHeavyHitterConfig, RecursiveSketch, ShardedTwoPassCoordinator,
    TwoPassHeavyHitter, TwoPassHeavyHitterConfig,
};
use zerolaw::prelude::*;
use zerolaw::sketch::{CountMinConfig, CountMinSketch, CountSketchConfig, SamplingEstimator};
use zerolaw::streams::checkpoint::CheckpointError;
use zerolaw::streams::AdversarialCollisionGenerator;

const DOMAIN: u64 = 64;
const BACKENDS: [HashBackend; 2] = [HashBackend::Polynomial, HashBackend::Tabulation];
const SIGN_FAMILIES: [SignFamily; 2] = [SignFamily::Polynomial4, SignFamily::Tabulation];

/// Strategy: a small turnstile stream described as (item, delta) pairs.
fn stream_strategy(domain: u64, max_len: usize) -> impl Strategy<Value = TurnstileStream> {
    prop::collection::vec((0..domain, -50i64..50), 2..max_len).prop_map(move |pairs| {
        let mut s = TurnstileStream::new(domain);
        for (item, delta) in pairs {
            if delta != 0 {
                s.push_delta(item, delta);
            }
        }
        s
    })
}

/// Interrupt ingestion at `cut`: feed the prefix, checkpoint, restore,
/// feed the suffix to the restored copy — while an uninterrupted clone of
/// `proto` absorbs the whole stream.  `check` compares the two bitwise.
fn assert_roundtrip_continues<S>(
    proto: &S,
    s: &TurnstileStream,
    cut: usize,
    check: impl Fn(&S, &S) -> Result<(), TestCaseError>,
) -> Result<(), TestCaseError>
where
    S: StreamSink + Checkpoint + Clone,
{
    let cut = cut.min(s.len());
    let (prefix, suffix) = s.updates().split_at(cut);

    let mut uninterrupted = proto.clone();
    for &u in s.iter() {
        uninterrupted.update(u);
    }

    let mut partial = proto.clone();
    for &u in prefix {
        partial.update(u);
    }
    let bytes = partial
        .to_checkpoint_bytes()
        .map_err(|e| TestCaseError::fail(format!("save failed: {e}")))?;
    let mut restored = S::from_checkpoint_bytes(&bytes)
        .map_err(|e| TestCaseError::fail(format!("restore failed: {e}")))?;
    for &u in suffix {
        restored.update(u);
    }
    check(&uninterrupted, &restored)?;

    // Truncations of the checkpoint must fail cleanly, never panic.
    // Probing every prefix would make the suite quadratic in checkpoint
    // size, so sample a spread of cut points plus the boundaries.
    let len = bytes.len();
    for frac in 0..=16usize {
        let cut = (len - 1) * frac / 16;
        if S::from_checkpoint_bytes(&bytes[..cut]).is_ok() {
            return Err(TestCaseError::fail(format!(
                "truncation at {cut}/{len} bytes restored successfully"
            )));
        }
    }
    Ok(())
}

fn check_estimates<S: FrequencySketch>(a: &S, b: &S) -> Result<(), TestCaseError> {
    for item in 0..DOMAIN {
        prop_assert_eq!(
            a.estimate(item).to_bits(),
            b.estimate(item).to_bits(),
            "estimates diverge on item {}",
            item
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// CountSketch: save → restore → continue is bit-for-bit, both backends.
    #[test]
    fn countsketch_roundtrip(s in stream_strategy(DOMAIN, 100), seed in 0u64..200, cut in 0usize..100) {
        for backend in BACKENDS {
            let proto = CountSketch::new(
                CountSketchConfig::new(3, 32).with_backend(backend),
                seed,
            );
            assert_roundtrip_continues(&proto, &s, cut, |a, b| {
                check_estimates(a, b)?;
                prop_assert_eq!(
                    a.residual_f2_excluding(&[1, 5]).to_bits(),
                    b.residual_f2_excluding(&[1, 5]).to_bits()
                );
                Ok(())
            })?;
        }
    }

    /// Count-Min: same contract, both backends.
    #[test]
    fn countmin_roundtrip(s in stream_strategy(DOMAIN, 100), seed in 0u64..200, cut in 0usize..100) {
        for backend in BACKENDS {
            let proto = CountMinSketch::with_config(
                CountMinConfig::new(3, 32).with_backend(backend),
                seed,
            );
            assert_roundtrip_continues(&proto, &s, cut, check_estimates)?;
        }
    }

    /// AMS (both sign families), exact tracker and sampling baseline.
    #[test]
    fn ams_exact_sampling_roundtrip(s in stream_strategy(DOMAIN, 100), seed in 0u64..200, cut in 0usize..100) {
        for family in SIGN_FAMILIES {
            let proto = AmsF2Sketch::with_sign_family(8, 3, seed, family).unwrap();
            assert_roundtrip_continues(&proto, &s, cut, |a, b| {
                prop_assert_eq!(a.sign_family(), family);
                prop_assert_eq!(b.sign_family(), family);
                prop_assert_eq!(a.estimate_f2().to_bits(), b.estimate_f2().to_bits());
                Ok(())
            })?;
        }

        let proto = ExactFrequencies::new(DOMAIN);
        assert_roundtrip_continues(&proto, &s, cut, |a, b| {
            prop_assert_eq!(a.vector(), b.vector());
            Ok(())
        })?;

        let proto = SamplingEstimator::new(DOMAIN, 16, seed);
        assert_roundtrip_continues(&proto, &s, cut, check_estimates)?;
    }

    /// DIST counter: verdict state is preserved across the interruption.
    #[test]
    fn dist_counter_roundtrip(s in stream_strategy(DOMAIN, 100), seed in 0u64..200, cut in 0usize..100) {
        let proto = DistCounter::new(DOMAIN, 11, 9, 1, seed);
        assert_roundtrip_continues(&proto, &s, cut, |a, b| {
            prop_assert_eq!(a.verdict(), b.verdict());
            prop_assert_eq!(a.space_words(), b.space_words());
            Ok(())
        })?;
    }

    /// g_np heavy hitter: counters *and* reverse hints survive (covers
    /// depend on both).  A tight hint cap exercises the saturated branch.
    #[test]
    fn gnp_heavy_hitter_roundtrip(s in stream_strategy(DOMAIN, 100), seed in 0u64..200, cut in 0usize..100) {
        for hint_cap in [4usize, 512] {
            let proto = GnpHeavyHitter::with_hint_cap(16, 12, hint_cap, seed);
            assert_roundtrip_continues(&proto, &s, cut, |a, b| {
                prop_assert_eq!(a.cover(DOMAIN), b.cover(DOMAIN));
                prop_assert_eq!(a.space_words(), b.space_words());
                Ok(())
            })?;
        }
    }

    /// Algorithm-2 heavy hitter (CountSketch + AMS + hints), every
    /// backend × sign-family combination: the sign-family tag must ride the
    /// checkpoint and reconstruct the identical bank.
    #[test]
    fn one_pass_heavy_hitter_roundtrip(
        s in stream_strategy(DOMAIN, 80),
        seed in 0u64..100,
        cut in 0usize..80,
    ) {
        for backend in BACKENDS {
            for sign_family in SIGN_FAMILIES {
                let config = OnePassHeavyHitterConfig {
                    rows: 3,
                    columns: 32,
                    candidates: 8,
                    epsilon: 0.2,
                    envelope_factor: 1.0,
                    backend,
                    sign_family,
                    hint_cap: 24,
                };
                let proto = OnePassHeavyHitter::new(PowerFunction::new(2.0), config, seed);
                assert_roundtrip_continues(&proto, &s, cut, |a, b| {
                    prop_assert_eq!(b.config().sign_family, sign_family);
                    prop_assert_eq!(a.cover(DOMAIN), b.cover(DOMAIN));
                    prop_assert_eq!(
                        a.frequency_error_bound().to_bits(),
                        b.frequency_error_bound().to_bits()
                    );
                    prop_assert_eq!(a.space_words(), b.space_words());
                    Ok(())
                })?;
            }
        }
    }

    /// The full one-pass g-SUM stack (recursive sketch of Algorithm-2
    /// levels), both backends.
    #[test]
    fn one_pass_gsum_roundtrip(s in stream_strategy(DOMAIN, 80), seed in 0u64..100, cut in 0usize..80) {
        for backend in BACKENDS {
            let config = GSumConfig::with_space_budget(DOMAIN, 0.25, 32, seed)
                .with_hash_backend(backend);
            let proto = OnePassGSumSketch::new(PowerFunction::new(2.0), &config);
            assert_roundtrip_continues(&proto, &s, cut, |a, b| {
                prop_assert_eq!(a.estimate().to_bits(), b.estimate().to_bits());
                prop_assert_eq!(a.space_words(), b.space_words());
                Ok(())
            })?;
        }
    }

    /// The recursive g_np stack (Proposition 54 per level).
    #[test]
    fn nearly_periodic_roundtrip(s in stream_strategy(DOMAIN, 80), seed in 0u64..100, cut in 0usize..80) {
        let est = NearlyPeriodicGSum::new(GSumConfig::with_space_budget(DOMAIN, 0.25, 32, seed));
        let proto = est.sketch();
        assert_roundtrip_continues(&proto, &s, cut, |a, b| {
            prop_assert_eq!(a.estimate().to_bits(), b.estimate().to_bits());
            Ok(())
        })?;
    }

    /// Two-pass heavy hitter: interrupted in the FIRST pass — the restored
    /// state finishes pass 1, transitions and tabulates identically.
    #[test]
    fn two_pass_heavy_hitter_roundtrip_first_phase(
        s in stream_strategy(DOMAIN, 80),
        seed in 0u64..100,
        cut in 0usize..80,
    ) {
        for backend in BACKENDS {
            let config = TwoPassHeavyHitterConfig {
                rows: 3,
                columns: 32,
                candidates: 8,
                backend,
                hint_cap: 24,
            };
            let proto = TwoPassHeavyHitter::new(PowerFunction::new(2.0), config, seed);
            assert_roundtrip_continues(&proto, &s, cut, |a, b| {
                prop_assert_eq!(a.candidates(), b.candidates());
                Ok(())
            })?;
        }
    }

    /// The full two-pass g-SUM stack, interrupted in BOTH phases: once
    /// mid-pass-1 and once mid-pass-2 (after the frozen candidate sets
    /// exist).  The final estimate matches the uninterrupted protocol
    /// bit for bit.
    #[test]
    fn two_pass_gsum_roundtrip_both_phases(
        s in stream_strategy(DOMAIN, 60),
        seed in 0u64..100,
        cut in 0usize..60,
    ) {
        for backend in BACKENDS {
            let config = GSumConfig::with_space_budget(DOMAIN, 0.25, 32, seed)
                .with_hash_backend(backend);
            let g = PowerFunction::new(2.0);

            // Uninterrupted reference run.
            let mut reference = TwoPassGSumSketch::new(g, &config);
            reference.process_stream(&s);
            reference.begin_second_pass();
            reference.process_stream(&s);

            let cut = cut.min(s.len());
            let (prefix, suffix) = s.updates().split_at(cut);

            // Interrupt mid-pass-1.
            let mut sketch = TwoPassGSumSketch::new(g, &config);
            sketch.update_batch(prefix);
            let bytes = sketch.to_checkpoint_bytes().unwrap();
            let mut sketch = TwoPassGSumSketch::<PowerFunction>::from_checkpoint_bytes(&bytes).unwrap();
            prop_assert!(!sketch.in_second_pass());
            sketch.update_batch(suffix);
            sketch.begin_second_pass();

            // Interrupt mid-pass-2 as well.
            sketch.update_batch(prefix);
            let bytes = sketch.to_checkpoint_bytes().unwrap();
            let mut sketch = TwoPassGSumSketch::<PowerFunction>::from_checkpoint_bytes(&bytes).unwrap();
            prop_assert!(sketch.in_second_pass());
            sketch.update_batch(suffix);

            prop_assert_eq!(sketch.estimate().to_bits(), reference.estimate().to_bits());
        }
    }

    /// `ShardedIngest::ingest_limited` + `resume` from checkpoint bytes is
    /// bit-identical to uninterrupted sharded ingestion.
    #[test]
    fn sharded_resume_roundtrip(s in stream_strategy(DOMAIN, 100), seed in 0u64..50, cut in 0usize..100) {
        let config = GSumConfig::with_space_budget(DOMAIN, 0.25, 32, seed);
        let proto = OnePassGSumSketch::new(PowerFunction::new(2.0), &config);

        let mut reference = proto.clone();
        reference.process_stream(&s);

        let ingest = ShardedIngest::new(2).with_batch_size(16);
        let (partial, consumed) = ingest
            .ingest_limited(&mut s.source(), &proto, cut)
            .expect("clones always merge");
        prop_assert_eq!(consumed, cut.min(s.len()));
        let bytes = partial.to_checkpoint_bytes().unwrap();

        // Continue from the bytes with the rest of the stream.
        let mut rest = s.source();
        for _ in 0..consumed {
            rest.next_update();
        }
        let resumed = ingest
            .resume(&mut rest, &proto, &mut bytes.as_slice())
            .expect("resume from own checkpoint");
        prop_assert_eq!(resumed.estimate().to_bits(), reference.estimate().to_bits());
    }

    /// The estimator registry's composite checkpoint: three functions over
    /// two substrates (two share a configuration, one has its own seed),
    /// interrupted mid-stream.  Save → restore → replay must land every
    /// registered function's estimate *and* its per-function checkpoint
    /// bytes ([`SketchRegistry::checkpoint_for`]) bit-identical to the
    /// uninterrupted run, under both backends.
    #[test]
    fn sketch_registry_roundtrip(s in stream_strategy(DOMAIN, 80), seed in 0u64..100, cut in 0usize..80) {
        for backend in BACKENDS {
            let shared = GSumConfig::with_space_budget(DOMAIN, 0.25, 32, seed)
                .with_hash_backend(backend);
            let mut lone = shared.clone();
            lone.seed = seed.wrapping_add(1);

            let mut proto = SketchRegistry::new();
            proto.register(PowerFunction::new(2.0), &shared).unwrap();
            proto.register(CappedLinear::new(100), &shared).unwrap();
            proto.register(PolylogFunction::new(2.0), &lone).unwrap();
            prop_assert_eq!(proto.substrate_count(), 2);
            let names = proto.function_names();

            assert_roundtrip_continues(&proto, &s, cut, |a, b| {
                for name in &names {
                    prop_assert_eq!(
                        a.estimate_for(name).map(f64::to_bits),
                        b.estimate_for(name).map(f64::to_bits),
                        "estimate for {} diverges after restore + replay",
                        name
                    );
                    let saved = a.checkpoint_for(name).unwrap().unwrap();
                    let restored = b.checkpoint_for(name).unwrap().unwrap();
                    prop_assert_eq!(
                        saved, restored,
                        "per-function checkpoint bytes for {} diverge",
                        name
                    );
                }
                prop_assert_eq!(
                    a.to_checkpoint_bytes().unwrap(),
                    b.to_checkpoint_bytes().unwrap(),
                    "the composite checkpoint diverges"
                );
                Ok(())
            })?;
        }
    }
}

// ---------------------------------------------------------------------------
// Corruption: malformed bytes are errors, never panics.
// ---------------------------------------------------------------------------

#[test]
fn wrong_version_wrong_kind_and_bad_backend_are_errors() {
    let cs = CountSketch::new(CountSketchConfig::new(3, 32), 7);
    let bytes = cs.to_checkpoint_bytes().unwrap();

    // Wrong format version (byte 4 is the version LSB).
    let mut wrong_version = bytes.clone();
    wrong_version[4] = 0xFE;
    assert!(matches!(
        CountSketch::from_checkpoint_bytes(&wrong_version),
        Err(CheckpointError::UnsupportedVersion { .. })
    ));

    // CountSketch bytes handed to a Count-Min restore: wrong kind.
    assert!(matches!(
        CountMinSketch::from_checkpoint_bytes(&bytes),
        Err(CheckpointError::WrongKind { .. })
    ));

    // A mangled hash-backend tag (first payload byte after rows+columns).
    let mut bad_backend = bytes.clone();
    bad_backend[8 + 16] = 0x7F;
    assert!(matches!(
        CountSketch::from_checkpoint_bytes(&bad_backend),
        Err(CheckpointError::Corrupt(_))
    ));

    // Not a checkpoint at all.
    assert!(matches!(
        CountSketch::from_checkpoint_bytes(b"definitely not a checkpoint"),
        Err(CheckpointError::BadMagic)
    ));
    assert!(CountSketch::from_checkpoint_bytes(&[]).is_err());
}

#[test]
fn mismatched_backend_checkpoint_refuses_to_merge_not_panic() {
    // Restore is self-describing (the backend rides in the bytes), so a
    // tabulation checkpoint restores fine — but folding it into a polynomial
    // pipeline is a merge error, exactly like live sketches.
    let mut tab = CountSketch::new(
        CountSketchConfig::new(3, 32).with_backend(HashBackend::Tabulation),
        7,
    );
    tab.update(Update::new(3, 5));
    let bytes = tab.to_checkpoint_bytes().unwrap();
    let restored = CountSketch::from_checkpoint_bytes(&bytes).unwrap();
    assert_eq!(restored.config().backend, HashBackend::Tabulation);

    let mut poly = CountSketch::new(CountSketchConfig::new(3, 32), 7);
    assert!(poly.merge(&restored).is_err());

    // The same at the resume layer: a sharded resume whose prototype was
    // built with the other backend surfaces the mismatch as an error.
    let proto = OnePassGSumSketch::new(
        PowerFunction::new(2.0),
        &GSumConfig::with_space_budget(DOMAIN, 0.25, 32, 1),
    );
    let tab_proto = OnePassGSumSketch::new(
        PowerFunction::new(2.0),
        &GSumConfig::with_space_budget(DOMAIN, 0.25, 32, 1)
            .with_hash_backend(HashBackend::Tabulation),
    );
    let bytes = proto.to_checkpoint_bytes().unwrap();
    let mut s = TurnstileStream::new(DOMAIN);
    s.push_delta(3, 5);
    let err = ShardedIngest::new(2).resume(&mut s.source(), &tab_proto, &mut bytes.as_slice());
    assert!(matches!(err, Err(CheckpointError::Merge(_))));
}

#[test]
fn mismatched_sign_family_checkpoint_refuses_to_merge_not_panic() {
    // A tabulation-family AMS checkpoint restores fine (the tag rides in the
    // bytes) — but folding it into a polynomial-family sketch is a merge
    // error, exactly like live sketches and like hash-backend mismatches.
    let mut tab = AmsF2Sketch::with_sign_family(8, 3, 7, SignFamily::Tabulation).unwrap();
    tab.update(Update::new(3, 5));
    let bytes = tab.to_checkpoint_bytes().unwrap();
    let restored = AmsF2Sketch::from_checkpoint_bytes(&bytes).unwrap();
    assert_eq!(restored.sign_family(), SignFamily::Tabulation);

    let mut poly = AmsF2Sketch::new(8, 3, 7).unwrap();
    assert!(poly.merge(&restored).is_err());

    // A mangled sign-family tag is a corruption error, never a panic or a
    // silently-guessed family.  Layout: 8-byte header, then
    // averages/medians/seed (8 bytes each), then the tag.
    let mut bad_tag = bytes.clone();
    bad_tag[8 + 24] = 0x7F;
    assert!(matches!(
        AmsF2Sketch::from_checkpoint_bytes(&bad_tag),
        Err(CheckpointError::Corrupt(_))
    ));

    // The same at the estimator layer: a tabulation-family one-pass g-SUM
    // checkpoint refuses to resume into a polynomial-family pipeline.
    let tab_config =
        GSumConfig::with_space_budget(DOMAIN, 0.25, 32, 1).with_sign_family(SignFamily::Tabulation);
    let mut tab_gsum = OnePassGSumSketch::new(PowerFunction::new(2.0), &tab_config);
    tab_gsum.update(Update::new(3, 5));
    let bytes = tab_gsum.to_checkpoint_bytes().unwrap();
    let poly_proto = OnePassGSumSketch::new(
        PowerFunction::new(2.0),
        &GSumConfig::with_space_budget(DOMAIN, 0.25, 32, 1),
    );
    let mut s = TurnstileStream::new(DOMAIN);
    s.push_delta(3, 5);
    let err = ShardedIngest::new(2).resume(&mut s.source(), &poly_proto, &mut bytes.as_slice());
    assert!(matches!(err, Err(CheckpointError::Merge(_))));
}

#[test]
fn recursive_sketch_restore_validates_structure() {
    let est = NearlyPeriodicGSum::new(GSumConfig::with_space_budget(DOMAIN, 0.25, 32, 3));
    let sketch = est.sketch();
    let bytes = sketch.to_checkpoint_bytes().unwrap();
    // Zero the level count (bytes 8..16 are the domain, 16..24 the seed,
    // 24..32 the level count).
    let mut no_levels = bytes.clone();
    no_levels[24..32].copy_from_slice(&0u64.to_le_bytes());
    assert!(matches!(
        RecursiveSketch::<GnpHeavyHitter>::from_checkpoint_bytes(&no_levels),
        Err(CheckpointError::Corrupt(_) | CheckpointError::Io(_))
    ));
}

// ---------------------------------------------------------------------------
// The sharded two-pass coordinator: bit-identical to single-threaded.
// ---------------------------------------------------------------------------

fn single_threaded_two_pass(
    g: PowerFunction,
    config: &GSumConfig,
    stream: &TurnstileStream,
) -> TwoPassGSumSketch<PowerFunction> {
    let mut sketch = TwoPassGSumSketch::new(g, config);
    sketch.process_stream(stream);
    sketch.begin_second_pass();
    sketch.process_stream(stream);
    sketch
}

fn assert_coordinator_matches(stream: &TurnstileStream, config: &GSumConfig, label: &str) {
    let g = PowerFunction::new(2.0);
    let reference = single_threaded_two_pass(g, config, stream);
    for shards in [1usize, 2, 4] {
        let prototype = TwoPassGSumSketch::new(g, config);
        let (result, frozen) = ShardedTwoPassCoordinator::new(shards)
            .with_batch_size(256)
            .run(&prototype, &mut stream.source(), &mut stream.source())
            .expect("coordinator run");
        assert_eq!(
            result.estimate().to_bits(),
            reference.estimate().to_bits(),
            "{label}: {shards}-shard coordinator must match single-threaded two-pass"
        );
        // The broadcast frozen state is the just-transitioned phase-2 seed.
        let rehydrated =
            TwoPassGSumSketch::<PowerFunction>::from_checkpoint_bytes(&frozen).unwrap();
        assert!(rehydrated.in_second_pass(), "{label}: frozen state phase");
    }
}

#[test]
fn coordinator_matches_single_threaded_on_zipf() {
    let domain = 1u64 << 8;
    let stream = ZipfStreamGenerator::new(StreamConfig::new(domain, 12_000), 1.2, 7).generate();
    let config = GSumConfig::with_space_budget(domain, 0.2, 64, 23);
    assert_coordinator_matches(&stream, &config, "zipf");

    // Tabulation backend too.
    let config = config.with_hash_backend(HashBackend::Tabulation);
    assert_coordinator_matches(&stream, &config, "zipf/tabulation");
}

#[test]
fn coordinator_matches_single_threaded_on_adversarial_workload() {
    let domain = 1u64 << 8;
    let stream = AdversarialCollisionGenerator::new(domain, 6, 40, 900, true, 11).generate();
    let config = GSumConfig::with_space_budget(domain, 0.2, 64, 31);
    assert_coordinator_matches(&stream, &config, "adversarial");
}
