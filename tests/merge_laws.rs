//! Property tests for the merge algebra behind sharded ingestion.
//!
//! Linear sketches form a commutative monoid under `merge` (for fixed
//! configuration and seed): these tests check commutativity and
//! associativity on random turnstile streams, that sharded ingestion of a
//! shuffled stream agrees exactly with single-threaded ingestion, and that
//! the push-based g-SUM sketch driven from a lazy source — no
//! `TurnstileStream` ever materialized on the estimator side — reproduces
//! the batch estimator bit for bit.

use proptest::prelude::*;
use zerolaw::prelude::*;
use zerolaw::sketch::{CountSketchConfig, SamplingEstimator};

/// Strategy: a small turnstile stream described as (item, delta) pairs.
fn stream_strategy(domain: u64, max_len: usize) -> impl Strategy<Value = TurnstileStream> {
    prop::collection::vec((0..domain, -50i64..50), 1..max_len).prop_map(move |pairs| {
        let mut s = TurnstileStream::new(domain);
        for (item, delta) in pairs {
            if delta != 0 {
                s.push_delta(item, delta);
            }
        }
        s
    })
}

/// Split a stream's updates into `parts` round-robin shards.
fn shards(stream: &TurnstileStream, parts: usize) -> Vec<Vec<Update>> {
    let mut out = vec![Vec::new(); parts];
    for (i, &u) in stream.updates().iter().enumerate() {
        out[i % parts].push(u);
    }
    out
}

fn countsketch(seed: u64) -> CountSketch {
    CountSketch::new(CountSketchConfig::new(3, 32), seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// merge is commutative: a ⊔ b and b ⊔ a answer every query identically.
    #[test]
    fn countsketch_merge_commutes(s1 in stream_strategy(64, 60), s2 in stream_strategy(64, 60)) {
        let mut a = countsketch(9);
        a.process_stream(&s1);
        let mut b = countsketch(9);
        b.process_stream(&s2);

        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        for item in 0..64u64 {
            prop_assert_eq!(ab.estimate(item).to_bits(), ba.estimate(item).to_bits());
        }
    }

    /// merge is associative: (a ⊔ b) ⊔ c equals a ⊔ (b ⊔ c).
    #[test]
    fn countsketch_merge_is_associative(
        s1 in stream_strategy(64, 40),
        s2 in stream_strategy(64, 40),
        s3 in stream_strategy(64, 40),
    ) {
        let build = |s: &TurnstileStream| {
            let mut cs = countsketch(5);
            cs.process_stream(s);
            cs
        };
        let (a, b, c) = (build(&s1), build(&s2), build(&s3));

        let mut left = a.clone();
        left.merge(&b).unwrap();
        left.merge(&c).unwrap();

        let mut bc = b.clone();
        bc.merge(&c).unwrap();
        let mut right = a.clone();
        right.merge(&bc).unwrap();

        for item in 0..64u64 {
            prop_assert_eq!(left.estimate(item).to_bits(), right.estimate(item).to_bits());
        }
    }

    /// merge equals concatenation: merging shard sketches gives the sketch
    /// of the whole stream (the defining linearity law).
    #[test]
    fn ams_and_countmin_merge_equal_concatenation(
        s in stream_strategy(64, 80),
        seed in 0u64..500,
    ) {
        let mid = s.len() / 2;
        let (front, back) = s.updates().split_at(mid);

        let mut whole_ams = AmsF2Sketch::new(8, 3, seed).unwrap();
        whole_ams.process_stream(&s);
        let mut a = AmsF2Sketch::new(8, 3, seed).unwrap();
        a.update_batch(front);
        let mut b = AmsF2Sketch::new(8, 3, seed).unwrap();
        b.update_batch(back);
        a.merge(&b).unwrap();
        prop_assert_eq!(a.estimate_f2().to_bits(), whole_ams.estimate_f2().to_bits());

        let mut whole_cm = CountMinSketch::new(3, 32, seed);
        whole_cm.process_stream(&s);
        let mut c = CountMinSketch::new(3, 32, seed);
        c.update_batch(front);
        let mut d = CountMinSketch::new(3, 32, seed);
        d.update_batch(back);
        c.merge(&d).unwrap();
        for item in 0..64u64 {
            prop_assert_eq!(c.estimate(item).to_bits(), whole_cm.estimate(item).to_bits());
        }
    }

    /// Sharded ingestion (2, 4, 8 shards) of a shuffled stream yields the
    /// identical estimate to single-threaded ingestion for the same seeds.
    #[test]
    fn sharded_ingestion_matches_single_threaded(
        s in stream_strategy(128, 120),
        shuffle_seed in 0u64..1000,
        sketch_seed in 0u64..1000,
    ) {
        let shuffled = s.shuffled(shuffle_seed);
        let prototype = countsketch(sketch_seed);

        let mut single = prototype.clone();
        single.process_stream(&shuffled);

        for shard_count in [2usize, 4, 8] {
            let merged = ShardedIngest::new(shard_count)
                .with_batch_size(16)
                .ingest(&mut shuffled.source(), &prototype)
                .unwrap();
            for item in 0..128u64 {
                prop_assert_eq!(
                    merged.estimate(item).to_bits(),
                    single.estimate(item).to_bits(),
                    "shards = {}, item = {}", shard_count, item
                );
            }
        }
    }

    /// The same sharded-vs-single agreement holds for the full one-pass
    /// g-SUM sketch (recursive sketch over Algorithm-2 levels).
    #[test]
    fn sharded_gsum_sketch_matches_single_threaded(
        s in stream_strategy(64, 80),
        seed in 0u64..200,
    ) {
        let config = GSumConfig::with_space_budget(64, 0.25, 32, seed);
        let prototype = OnePassGSumSketch::new(PowerFunction::new(2.0), &config);

        let mut single = prototype.clone();
        single.process_stream(&s);

        for shard_count in [2usize, 4] {
            let mut merged = prototype.clone();
            for shard in shards(&s, shard_count) {
                let mut worker = prototype.clone();
                worker.update_batch(&shard);
                merged.merge(&worker).unwrap();
            }
            prop_assert_eq!(merged.estimate().to_bits(), single.estimate().to_bits());
        }
    }

    /// Exact trackers and sampling estimators obey the same laws.
    #[test]
    fn exact_and_sampling_merge_equal_concatenation(s in stream_strategy(64, 80)) {
        let mid = s.len() / 2;
        let (front, back) = s.updates().split_at(mid);

        let mut whole = ExactFrequencies::new(64);
        whole.process_stream(&s);
        let mut a = ExactFrequencies::new(64);
        a.update_batch(front);
        let mut b = ExactFrequencies::new(64);
        b.update_batch(back);
        a.merge(&b).unwrap();
        prop_assert_eq!(a.vector(), whole.vector());

        let mut whole_sample = SamplingEstimator::new(64, 16, 3);
        whole_sample.process_stream(&s);
        let mut c = SamplingEstimator::new(64, 16, 3);
        c.update_batch(front);
        let mut d = SamplingEstimator::new(64, 16, 3);
        d.update_batch(back);
        c.merge(&d).unwrap();
        for item in 0..64u64 {
            prop_assert_eq!(c.estimate(item).to_bits(), whole_sample.estimate(item).to_bits());
        }
    }
}

/// Incompatible merges are rejected across the stack.
#[test]
fn incompatible_merges_are_rejected() {
    let mut cs = countsketch(1);
    assert!(cs.merge(&countsketch(2)).is_err());

    let mut ams = AmsF2Sketch::new(4, 3, 1).unwrap();
    assert!(ams.merge(&AmsF2Sketch::new(4, 3, 2).unwrap()).is_err());
    assert!(ams.merge(&AmsF2Sketch::new(8, 3, 1).unwrap()).is_err());

    let mut cm = CountMinSketch::new(2, 16, 1);
    assert!(cm.merge(&CountMinSketch::new(2, 16, 9)).is_err());

    let mut exact = ExactFrequencies::new(8);
    assert!(exact.merge(&ExactFrequencies::new(9)).is_err());

    let config = GSumConfig::with_space_budget(64, 0.2, 32, 1);
    let mut gs = OnePassGSumSketch::with_seed(PowerFunction::new(2.0), &config, 1);
    let other = OnePassGSumSketch::with_seed(PowerFunction::new(2.0), &config, 2);
    assert!(gs.merge(&other).is_err());
}

/// The acceptance criterion of the push-based refactor: a g-SUM estimate
/// computed by feeding updates one at a time through
/// `OnePassGSumSketch::update` — pulled from a lazy generator, never
/// constructing a `TurnstileStream` on the estimator side — matches
/// `OnePassGSum::estimate` on the materialized stream bit for bit for the
/// same seed.
#[test]
fn push_ingestion_from_lazy_source_matches_batch_estimator_bit_for_bit() {
    let domain = 1u64 << 9;
    let config = GSumConfig::with_space_budget(domain, 0.2, 128, 41);
    let g = PowerFunction::new(2.0);

    // Batch world: materialize the stream, run the wrapper.
    let stream = ZipfStreamGenerator::new(StreamConfig::new(domain, 10_000), 1.2, 17).generate();
    let batch = OnePassGSum::new(g, config.clone()).estimate(&stream);

    // Push world: pull updates lazily from an identically seeded generator
    // and push them into the long-lived sketch one at a time.
    let mut source = ZipfStreamGenerator::new(StreamConfig::new(domain, 10_000), 1.2, 17);
    let mut sketch = OnePassGSumSketch::new(g, &config);
    let mut pushed = 0usize;
    while let Some(u) = source.next_update() {
        sketch.update(u);
        pushed += 1;
    }
    assert_eq!(pushed, 10_000);
    assert_eq!(sketch.estimate().to_bits(), batch.to_bits());
}

/// `ShardedIngest` drives the full estimator stack end to end: generator →
/// sharded workers → merge → estimate, agreeing exactly with one thread.
#[test]
fn sharded_ingest_of_gsum_sketch_end_to_end() {
    let domain = 1u64 << 8;
    let config = GSumConfig::with_space_budget(domain, 0.2, 64, 29);
    let prototype = OnePassGSumSketch::new(PowerFunction::new(2.0), &config);

    let mut gen = ZipfStreamGenerator::new(StreamConfig::new(domain, 20_000), 1.1, 3);
    let mut single = prototype.clone();
    gen.feed(&mut single);

    for shard_count in [2usize, 4, 8] {
        gen.reset();
        let merged = ShardedIngest::new(shard_count)
            .with_batch_size(512)
            .ingest(&mut gen, &prototype)
            .unwrap();
        assert_eq!(
            merged.estimate().to_bits(),
            single.estimate().to_bits(),
            "sharded ({shard_count}) g-SUM ingestion must match single-threaded"
        );
    }
}
