//! Property tests for the framed wire format and the pipelined ingest path.
//!
//! The wire contract mirrors the checkpoint contract, but for data in
//! motion: encode a stream of updates as length-prefixed frames, read it
//! back — possibly through a reader that returns arbitrarily small chunks,
//! like a congested socket — and the decoded update sequence is *identical*.
//! Corrupt bytes (truncation mid-frame, a wrong magic or version, an
//! oversized length prefix, a misaligned payload) surface as typed
//! [`WireError`]s, never panics, and truncation is always distinguishable
//! from the explicit end-of-stream frame.
//!
//! On top of the codec, the acceptance criteria for the ingest service are
//! proven here:
//!
//! * [`PipelinedIngest`] over a framed wire stream is **bit-identical** to
//!   single-threaded ingestion of the same updates, for both hash backends
//!   (compared via checkpoint bytes — the strongest equality the workspace
//!   has).
//! * The serving loop's kill/resume cycle — merge and checkpoint every K
//!   updates, crash at an arbitrary point, restore from the checkpoint and
//!   replay the non-durable suffix — reproduces the uninterrupted sketch
//!   state bit-for-bit.

use proptest::prelude::*;
use zerolaw::prelude::*;
use zerolaw::streams::wire::{encode_updates, WIRE_VERSION};

const DOMAIN: u64 = 64;
const BACKENDS: [HashBackend; 2] = [HashBackend::Polynomial, HashBackend::Tabulation];

/// Strategy: a batch of turnstile updates as (item, delta) pairs.
fn updates_strategy(domain: u64, max_len: usize) -> impl Strategy<Value = Vec<Update>> {
    prop::collection::vec((0..domain, -50i64..50), 0..max_len)
        .prop_map(|pairs| pairs.into_iter().map(Update::from).collect())
}

/// A reader that serves bytes in deterministic pseudo-random small chunks —
/// the shape of a socket under congestion.  `read` never fails; it just
/// returns between 1 and `max_chunk` bytes at a time.
struct ChunkedReader<'a> {
    data: &'a [u8],
    pos: usize,
    state: u64,
    max_chunk: usize,
}

impl<'a> ChunkedReader<'a> {
    fn new(data: &'a [u8], seed: u64, max_chunk: usize) -> Self {
        Self {
            data,
            pos: 0,
            state: seed | 1,
            max_chunk: max_chunk.max(1),
        }
    }
}

impl std::io::Read for ChunkedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        // SplitMix-ish step; only the low bits matter for chunk sizing.
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let chunk = 1 + (self.state >> 33) as usize % self.max_chunk;
        let n = chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn decode_all(bytes: &[u8], seed: u64, max_chunk: usize) -> Vec<Update> {
    let chunked = ChunkedReader::new(bytes, seed, max_chunk);
    let mut reader = FrameReader::new(chunked).expect("valid header");
    let decoded: Vec<Update> = reader.updates().collect();
    assert!(reader.finished(), "clean stream must reach its end frame");
    assert!(reader.error().is_none());
    reader.finish().expect("clean stream must finish");
    decoded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Write frames → read back → identical update sequence, under random
    /// chunked reads and random frame sizes.
    #[test]
    fn roundtrip_identical_under_chunked_reads(
        updates in updates_strategy(DOMAIN, 300),
        frame_updates in 1usize..64,
        chunk_seed in 0u64..u64::MAX,
        max_chunk in 1usize..40,
    ) {
        let mut writer = FrameWriter::new(Vec::new(), DOMAIN)
            .expect("writer")
            .with_frame_updates(frame_updates)
            .expect("positive frame size");
        writer.write_batch(&updates).expect("encode");
        let bytes = writer.finish().expect("finish");
        let decoded = decode_all(&bytes, chunk_seed, max_chunk);
        prop_assert_eq!(decoded, updates);
    }

    /// Truncating the encoded stream anywhere — mid-header, mid-frame,
    /// before the end frame — is a typed error, never a panic and never a
    /// silent clean end.
    #[test]
    fn truncation_mid_frame_is_a_typed_error(
        updates in updates_strategy(DOMAIN, 120),
        frame_updates in 1usize..16,
        cut_fraction in 0u64..10_000,
    ) {
        let mut writer = FrameWriter::new(Vec::new(), DOMAIN)
            .expect("writer")
            .with_frame_updates(frame_updates)
            .expect("positive frame size");
        writer.write_batch(&updates).expect("encode");
        let bytes = writer.finish().expect("finish");
        // Cut strictly before the final byte so the end frame is lost.
        let cut = (cut_fraction as usize * (bytes.len() - 1)) / 10_000;
        let truncated = &bytes[..cut];
        match FrameReader::new(truncated) {
            Err(e) => prop_assert!(e.is_truncation(), "header truncation at {}: {}", cut, e),
            Ok(mut reader) => {
                while reader.next_update().is_some() {}
                prop_assert!(!reader.finished(), "cut at {} cannot be a clean end", cut);
                match reader.finish() {
                    Err(e) => prop_assert!(e.is_truncation(), "cut at {}: {}", cut, e),
                    Ok(_) => prop_assert!(false, "truncated stream finished cleanly"),
                }
            }
        }
    }

    /// A pipelined ingest of a framed wire stream lands in exactly the
    /// state of single-threaded ingestion — checkpoint bytes equal, for
    /// both hash backends, across worker counts and channel depths.
    #[test]
    fn pipelined_wire_ingest_is_bit_identical(
        updates in updates_strategy(DOMAIN, 400),
        workers in 1usize..5,
        depth in 1usize..5,
        batch in 1usize..200,
    ) {
        let bytes = encode_updates(DOMAIN, &updates).expect("encode");
        for backend in BACKENDS {
            let config = GSumConfig::with_space_budget(DOMAIN, 0.25, 64, 11)
                .with_hash_backend(backend);
            let prototype = OnePassGSumSketch::new(PowerFunction::new(2.0), &config);

            let mut single = prototype.clone();
            for &u in &updates {
                single.update(u);
            }

            let reader = FrameReader::new(bytes.as_slice()).expect("header");
            let (piped, count, _rest) = PipelinedIngest::new(workers)
                .with_batch_size(batch)
                .with_channel_depth(depth)
                .ingest_wire(reader, &prototype)
                .expect("wire ingest");
            prop_assert_eq!(count, updates.len() as u64);
            prop_assert_eq!(
                piped.to_checkpoint_bytes().expect("save piped"),
                single.to_checkpoint_bytes().expect("save single"),
                "backend {:?}: pipelined wire ingest must be bit-identical",
                backend
            );
        }
    }

    /// The ingest server's lifecycle: merge + checkpoint every K updates,
    /// crash at an arbitrary kill point (losing everything since the last
    /// checkpoint), restore, replay the suffix from the durable offset —
    /// bit-for-bit the uninterrupted state.  Both hash backends.
    #[test]
    fn kill_and_resume_reproduces_the_uninterrupted_state(
        updates in updates_strategy(DOMAIN, 300),
        checkpoint_every in 1usize..60,
        kill_fraction in 0u64..10_000,
    ) {
        for backend in BACKENDS {
            let config = GSumConfig::with_space_budget(DOMAIN, 0.25, 64, 5)
                .with_hash_backend(backend);
            let prototype = OnePassGSumSketch::new(PowerFunction::new(2.0), &config);
            let pipeline = PipelinedIngest::new(2).with_batch_size(32);

            let mut uninterrupted = prototype.clone();
            for &u in &updates {
                uninterrupted.update(u);
            }

            // Incarnation 1: serve K-sized slices off the wire, checkpoint
            // after each merge, and crash once the kill point passes —
            // without merging the in-flight slice, like a real SIGKILL.
            let kill_after = (kill_fraction as usize * updates.len()) / 10_000;
            let bytes = encode_updates(DOMAIN, &updates).expect("encode");
            let mut reader = FrameReader::new(bytes.as_slice()).expect("header");
            let mut serving = prototype.clone();
            let mut durable = 0usize;
            let mut checkpoint = (serving.to_checkpoint_bytes().expect("save"), durable);
            loop {
                let (slice, consumed) = pipeline
                    .ingest_limited(&mut reader, &prototype, checkpoint_every)
                    .expect("slice ingest");
                if consumed == 0 {
                    break;
                }
                if durable + consumed > kill_after {
                    break; // crash: the slice never becomes durable
                }
                serving.merge(&slice).expect("merge slice");
                durable += consumed;
                checkpoint = (serving.to_checkpoint_bytes().expect("save"), durable);
            }

            // Incarnation 2: restore and replay everything after the
            // durable offset.
            let (saved_bytes, saved_count) = checkpoint;
            let mut restored =
                OnePassGSumSketch::from_checkpoint_bytes(&saved_bytes).expect("restore");
            let replay = encode_updates(DOMAIN, &updates[saved_count..]).expect("encode suffix");
            let mut reader = FrameReader::new(replay.as_slice()).expect("header");
            loop {
                let (slice, consumed) = pipeline
                    .ingest_limited(&mut reader, &prototype, checkpoint_every)
                    .expect("slice ingest");
                if consumed == 0 {
                    break;
                }
                restored.merge(&slice).expect("merge slice");
            }
            reader.finish().expect("replay stream complete");

            prop_assert_eq!(
                restored.to_checkpoint_bytes().expect("save restored"),
                uninterrupted.to_checkpoint_bytes().expect("save uninterrupted"),
                "backend {:?}: kill at {} / checkpoint every {} must resume bit-exactly",
                backend,
                kill_after,
                checkpoint_every
            );
        }
    }
}

#[test]
fn frame_reader_feeds_existing_sinks_unchanged() {
    // FrameReader is an UpdateSource: any sink in the workspace ingests a
    // wire stream with no adapter code.
    let updates: Vec<Update> = (0..500u64).map(|i| Update::new(i % DOMAIN, 1)).collect();
    let bytes = encode_updates(DOMAIN, &updates).unwrap();

    for backend in BACKENDS {
        let cs_config = CountSketchConfig::new(3, 32).with_backend(backend);
        let mut from_wire = CountSketch::new(cs_config, 9);
        let mut direct = CountSketch::new(cs_config, 9);

        let mut reader = FrameReader::new(bytes.as_slice()).unwrap();
        reader.feed(&mut from_wire);
        reader.finish().unwrap();
        for &u in &updates {
            direct.update(u);
        }
        assert_eq!(
            from_wire.to_checkpoint_bytes().unwrap(),
            direct.to_checkpoint_bytes().unwrap(),
            "backend {backend:?}: wire-fed CountSketch must equal direct ingestion"
        );
    }
}

#[test]
fn wrong_magic_version_and_oversized_prefix_are_typed_errors() {
    let good = encode_updates(DOMAIN, &[Update::insert(1), Update::delete(2)]).unwrap();

    let mut bad_magic = good.clone();
    bad_magic[..4].copy_from_slice(b"ZLCK"); // checkpoint magic is not wire magic
    assert!(matches!(
        FrameReader::new(bad_magic.as_slice()),
        Err(WireError::BadMagic)
    ));

    let mut bad_version = good.clone();
    bad_version[4..6].copy_from_slice(&(WIRE_VERSION + 1).to_le_bytes());
    assert!(matches!(
        FrameReader::new(bad_version.as_slice()),
        Err(WireError::UnsupportedVersion { found }) if found == WIRE_VERSION + 1
    ));

    // Forge a length prefix far beyond the reader's frame bound: rejected
    // before allocation, with the offending length in the error.
    let mut oversized = good.clone();
    oversized[15..19].copy_from_slice(&(u32::MAX - 7).to_le_bytes());
    let mut reader = FrameReader::new(oversized.as_slice()).unwrap();
    assert_eq!(reader.next_update(), None);
    assert!(matches!(
        reader.take_error(),
        Some(WireError::OversizedFrame { len, .. }) if len == u32::MAX - 7
    ));
}

#[test]
fn sharded_and_pipelined_share_config_validation() {
    // The satellite fix: zero shards / zero batch / zero depth are rejected
    // with the *same* typed error by both ingestion topologies.
    assert_eq!(
        ShardedIngest::try_new(0).unwrap_err(),
        PipelinedIngest::try_new(0).unwrap_err()
    );
    assert_eq!(
        ShardedIngest::try_new(2)
            .unwrap()
            .try_with_batch_size(0)
            .unwrap_err(),
        PipelinedIngest::try_new(2)
            .unwrap()
            .try_with_batch_size(0)
            .unwrap_err()
    );
    assert_eq!(
        ShardedIngest::try_new(2)
            .unwrap()
            .try_with_channel_depth(0)
            .unwrap_err(),
        PipelinedIngest::try_new(2)
            .unwrap()
            .try_with_channel_depth(0)
            .unwrap_err()
    );
}
