//! Property tests for the serving layer's multi-client fan-in.
//!
//! The acceptance contract of the `gsum_serve` coordinator is *merge-order
//! invariance*: folding per-client sketches into the serving state — in any
//! permutation, with any mix of partially-failed streams, under either
//! [`ServePolicy`], from any number of threads — must land in checkpoint
//! bytes **bit-identical** to a single-threaded replay of exactly the kept
//! updates.  Linearity licenses the claim (integer-valued `f64` counters
//! add exactly, so merging is commutative and associative to the bit) and
//! these tests enforce it for both hash backends.
//!
//! Also covered: the parked-state fan-in path (checkpoint bytes fold
//! identically to live sketches), and the server's decode-time rejection of
//! a client stream declaring the wrong domain.

use proptest::prelude::*;
use zerolaw::prelude::*;
use zerolaw::streams::wire::encode_updates;

const DOMAIN: u64 = 64;
const BACKENDS: [HashBackend; 2] = [HashBackend::Polynomial, HashBackend::Tabulation];
const POLICIES: [ServePolicy; 2] = [ServePolicy::DiscardPartial, ServePolicy::MergeCompleted];

fn proto(backend: HashBackend) -> OnePassGSumSketch<PowerFunction> {
    let config = GSumConfig::with_space_budget(DOMAIN, 0.25, 64, 11).with_hash_backend(backend);
    OnePassGSumSketch::new(PowerFunction::new(2.0), &config)
}

/// Encode one client stream.  `truncate_at: Some(k)` emits the first `k`
/// updates in complete frames and then just stops — no end-of-stream frame,
/// the wire shape of a producer crash.
fn encode_client(updates: &[Update], truncate_at: Option<usize>) -> Vec<u8> {
    match truncate_at {
        None => encode_updates(DOMAIN, updates).expect("encode"),
        Some(k) => {
            let mut buf = Vec::new();
            let mut writer = FrameWriter::new(&mut buf, DOMAIN)
                .expect("header")
                .with_frame_updates(16)
                .expect("frame size");
            writer.write_batch(&updates[..k]).expect("prefix");
            writer.flush_frame().expect("flush");
            drop(writer); // no finish(): the stream is truncated
            buf
        }
    }
}

/// What the policy keeps of a client stream: everything, the decoded
/// prefix, or nothing.
fn kept(updates: &[Update], cut: Option<usize>, policy: ServePolicy) -> &[Update] {
    match (cut, policy) {
        (None, _) => updates,
        (Some(k), ServePolicy::MergeCompleted) => &updates[..k],
        (Some(_), ServePolicy::DiscardPartial) => &[],
    }
}

/// Deterministic Fisher–Yates from a seed (the proptest shim has no
/// permutation strategy).
fn shuffle(order: &mut [usize], seed: u64) {
    let mut state = seed | 1;
    for i in (1..order.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((state >> 33) as usize) % (i + 1);
        order.swap(i, j);
    }
}

type ClientSpec = (Vec<Update>, Option<usize>);

/// The raw tuple the proptest strategy generates per client:
/// (item, delta) pairs, a die roll deciding failure, and the cut fraction.
type RawClient = (Vec<(u64, i64)>, u64, u64);

/// Decode the raw proptest tuples into per-client (updates, failure cut).
fn client_specs(raw: &[RawClient]) -> Vec<ClientSpec> {
    raw.iter()
        .map(|(pairs, fail_die, cut_frac)| {
            let updates: Vec<Update> = pairs.iter().map(|&(i, d)| Update::new(i, d)).collect();
            // Roughly a third of the clients die mid-stream, at an
            // arbitrary completed-frame boundary.
            let cut = (fail_die % 3 == 0).then(|| (*cut_frac as usize * updates.len()) / 10_000);
            (updates, cut)
        })
        .collect()
}

/// Single-threaded reference over the kept updates, in canonical client
/// order, plus the durable count.
fn reference(specs: &[ClientSpec], policy: ServePolicy, backend: HashBackend) -> (Vec<u8>, u64) {
    let mut single = proto(backend);
    let mut durable = 0u64;
    for (updates, cut) in specs {
        let keep = kept(updates, *cut, policy);
        for &u in keep {
            single.update(u);
        }
        durable += keep.len() as u64;
    }
    (
        single.to_checkpoint_bytes().expect("save reference"),
        durable,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Fold clients in a random permutation, with a random subset failing
    /// mid-stream: checkpoint bytes equal the single-threaded replay of
    /// the kept updates, for both policies and both backends — and the
    /// canonical client order used by the reference shows the fold order
    /// never matters.
    #[test]
    fn fan_in_is_permutation_and_failure_invariant(
        raw in prop::collection::vec(
            (prop::collection::vec((0..DOMAIN, -20i64..21), 1..120), 0u64..1_000, 0u64..10_000),
            1..5,
        ),
        perm_seed in 0u64..u64::MAX,
    ) {
        let specs = client_specs(&raw);
        let mut order: Vec<usize> = (0..specs.len()).collect();
        shuffle(&mut order, perm_seed);

        for backend in BACKENDS {
            for policy in POLICIES {
                let (expect_bytes, expect_durable) = reference(&specs, policy, backend);

                let prototype = proto(backend);
                let coordinator =
                    MergeCoordinator::new(prototype.clone(), 0, 37, None, None).expect("config");
                let pipeline = PipelinedIngest::new(2).with_batch_size(31);
                for &i in &order {
                    let (updates, cut) = &specs[i];
                    let bytes = encode_client(updates, *cut);
                    let mut frames = FrameReader::new(bytes.as_slice()).expect("header");
                    let outcome = coordinator
                        .ingest_stream(&prototype, &pipeline, policy, &mut frames)
                        .expect("ingest");
                    prop_assert_eq!(
                        outcome.completed(),
                        cut.is_none(),
                        "completion must track the end-of-stream frame"
                    );
                    if cut.is_some() {
                        prop_assert!(
                            matches!(&outcome.failure, Some(PipelineError::Wire(e)) if e.is_truncation()),
                            "a cut stream must fail as truncation"
                        );
                    }
                }

                prop_assert_eq!(coordinator.durable_count(), expect_durable);
                let snapshot = coordinator.snapshot().expect("snapshot");
                prop_assert_eq!(snapshot.durable_count(), expect_durable);
                prop_assert_eq!(
                    snapshot.state_bytes(),
                    expect_bytes.as_slice(),
                    "fold order {:?} under {:?}/{:?} must be bit-identical to the reference",
                    &order, policy, backend
                );
            }
        }
    }

    /// A client state that traveled as checkpoint bytes (ParkedState) folds
    /// exactly like the live sketch it was parked from.
    #[test]
    fn parked_state_fan_in_equals_live_fan_in(
        raw in prop::collection::vec(
            (prop::collection::vec((0..DOMAIN, -20i64..21), 1..150), 0u64..1, 0u64..1),
            1..4,
        ),
    ) {
        let specs = client_specs(&raw);
        for backend in BACKENDS {
            let prototype = proto(backend);
            let live = MergeCoordinator::new(prototype.clone(), 0, 1_000, None, None)
                .expect("config");
            let parked = MergeCoordinator::new(prototype.clone(), 0, 1_000, None, None)
                .expect("config");

            for (updates, _) in &specs {
                let mut client = prototype.clone();
                for &u in updates {
                    client.update(u);
                }
                assert!(matches!(
                    live.fold(&client, updates.len() as u64).expect("fold"),
                    FoldOutcome::Merged { .. }
                ));
                let bytes = ParkedState::park(&client, updates.len() as u64).expect("park");
                assert!(matches!(
                    parked.fold_parked(&bytes).expect("fold parked"),
                    FoldOutcome::Merged { .. }
                ));
            }

            prop_assert_eq!(live.durable_count(), parked.durable_count());
            let live_snapshot = live.snapshot().expect("snapshot");
            let parked_snapshot = parked.snapshot().expect("snapshot");
            prop_assert_eq!(
                live_snapshot.state_bytes(),
                parked_snapshot.state_bytes(),
                "backend {:?}: parked bytes must fold exactly like live sketches",
                backend
            );
        }
    }
}

/// True concurrency: many client streams ingested from simultaneous
/// threads against one coordinator still land bit-identically on the
/// single-threaded replay — the lock serializes folds, linearity makes
/// their interleaving irrelevant.
#[test]
fn concurrent_thread_fan_in_is_bit_identical() {
    const CLIENTS: usize = 6;
    for backend in BACKENDS {
        for policy in POLICIES {
            let specs: Vec<ClientSpec> = (0..CLIENTS)
                .map(|c| {
                    let updates: Vec<Update> = (0..400u64)
                        .map(|i| Update::new((i * (c as u64 + 3)) % DOMAIN, 1 - (i as i64 % 3)))
                        .collect();
                    // Odd-indexed clients die after 100 updates.
                    (updates, (c % 2 == 1).then_some(100))
                })
                .collect();
            let (expect_bytes, expect_durable) = reference(&specs, policy, backend);

            let prototype = proto(backend);
            let coordinator =
                MergeCoordinator::new(prototype.clone(), 0, 64, None, None).expect("config");
            let pipeline = PipelinedIngest::new(2).with_batch_size(50);
            let barrier = std::sync::Barrier::new(CLIENTS);
            std::thread::scope(|scope| {
                for (updates, cut) in &specs {
                    let coordinator = &coordinator;
                    let prototype = &prototype;
                    let pipeline = &pipeline;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        let bytes = encode_client(updates, *cut);
                        let mut frames = FrameReader::new(bytes.as_slice()).expect("header");
                        barrier.wait();
                        let outcome = coordinator
                            .ingest_stream(prototype, pipeline, policy, &mut frames)
                            .expect("ingest");
                        assert_eq!(outcome.completed(), cut.is_none());
                    });
                }
            });

            assert_eq!(coordinator.durable_count(), expect_durable);
            assert_eq!(
                coordinator.snapshot().expect("snapshot").state_bytes(),
                expect_bytes.as_slice(),
                "{policy:?}/{backend:?}: concurrent fan-in must equal the single-threaded replay"
            );
            let stats = coordinator.stats();
            assert_eq!(stats.streams_completed, (CLIENTS / 2) as u64);
            assert_eq!(
                stats.streams_failed,
                CLIENTS as u64 - stats.streams_completed
            );
        }
    }
}

/// Satellite regression: a stream declaring a different domain than the
/// server serves is rejected at decode — a typed error on the reply
/// channel, nothing applied to the serving state.
#[test]
fn server_rejects_wrong_domain_at_decode() {
    use std::io::{BufRead, BufReader, BufWriter, Write};
    use std::net::{TcpListener, TcpStream};

    let prototype = proto(HashBackend::Polynomial);
    let server = GsumServer::boot(prototype.clone(), ServeConfig::new(), None).expect("boot");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::scope(|scope| {
        let server = &server;
        let handle = scope.spawn(move || server.serve(listener).expect("serve"));

        // Declare domain 32 to a server serving 64.
        let stream = TcpStream::connect(addr).expect("connect");
        let mut read_half = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = FrameWriter::new(BufWriter::new(stream), 32).expect("header");
        writer.write_update(Update::insert(1)).expect("write");
        writer.finish().expect("finish");
        let mut line = String::new();
        read_half.read_line(&mut line).expect("reply");
        match Response::parse(&line).expect("parse") {
            Response::Err(reason) => {
                assert!(
                    reason.contains("declares domain 32") && reason.contains("64"),
                    "reply must name both domains: {reason:?}"
                );
            }
            other => panic!("expected ERR, got {other:?}"),
        }
        assert_eq!(server.durable_count(), 0, "nothing may reach the state");

        // Clean shutdown.
        let mut quit = TcpStream::connect(addr).expect("connect");
        writeln!(quit, "QUIT").expect("send");
        let mut bye = String::new();
        BufReader::new(quit).read_line(&mut bye).expect("read");
        assert_eq!(Response::parse(&bye).expect("parse"), Response::Bye);
        let summary = handle.join().expect("server thread");
        assert!(summary.clean_shutdown);
        assert_eq!(summary.stats.streams_completed, 0);
    });
}

/// A client that connects and then sends nothing must not wedge the clean
/// shutdown: the read timeout releases its handler thread, `QUIT` drains,
/// and `serve` returns with the final snapshot written.
#[test]
fn stalled_client_cannot_hang_clean_shutdown() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};

    let prototype = proto(HashBackend::Polynomial);
    let config =
        ServeConfig::new().with_client_read_timeout(Some(std::time::Duration::from_millis(100)));
    let server = GsumServer::boot(prototype, config, None).expect("boot");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::scope(|scope| {
        let server = &server;
        let handle = scope.spawn(move || server.serve(listener).expect("serve"));

        // The stall: a connection that never sends a byte.  Hold it open
        // across the whole shutdown sequence.
        let stalled = TcpStream::connect(addr).expect("connect stalled client");

        let mut quit = TcpStream::connect(addr).expect("connect");
        writeln!(quit, "QUIT").expect("send");
        let mut bye = String::new();
        BufReader::new(quit).read_line(&mut bye).expect("read");
        assert_eq!(Response::parse(&bye).expect("parse"), Response::Bye);

        // Without the timeout this join would block forever on the stalled
        // handler; the test harness's own timeout would fail the test.
        let summary = handle.join().expect("server thread");
        assert!(summary.clean_shutdown);
        drop(stalled);
    });
}
