//! Property and protocol tests for the reactor serving loop.
//!
//! The tentpole claim of the reactor rewrite is that **sharding changed
//! nothing observable**: per-worker shard sketches folding into the
//! published serving state on query/checkpoint/stream-end land in
//! checkpoint bytes **bit-identical** to a single-threaded replay of the
//! concatenated kept updates — for both hash backends, both
//! [`ServePolicy`] values, any worker-pool size, and with load shedding
//! (`BUSY` refusals) happening along the way.  Linearity licenses the
//! claim (integer-valued `f64` counters add exactly, so the multiset of
//! increments determines the counters regardless of which shard absorbed
//! what); the proptest here enforces it over real loopback sockets.
//!
//! Also covered, over the reactor path specifically: command lines split
//! across readiness events, wire frames split mid-frame across writes,
//! oversized command lines, interleaved queries and ingest streams
//! pipelined on one connection, and the deterministic `BUSY` shed reply.

use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use zerolaw::prelude::*;
use zerolaw::streams::wire::encode_updates;

const DOMAIN: u64 = 64;
const BACKENDS: [HashBackend; 2] = [HashBackend::Polynomial, HashBackend::Tabulation];
const POLICIES: [ServePolicy; 2] = [ServePolicy::DiscardPartial, ServePolicy::MergeCompleted];

fn proto(backend: HashBackend) -> OnePassGSumSketch<PowerFunction> {
    let config = GSumConfig::with_space_budget(DOMAIN, 0.25, 64, 11).with_hash_backend(backend);
    OnePassGSumSketch::new(PowerFunction::new(2.0), &config)
}

/// Encode one client stream.  `truncate_at: Some(k)` emits the first `k`
/// updates in complete frames and then just stops — no end-of-stream
/// frame, the wire shape of a producer crash.
fn encode_client(updates: &[Update], truncate_at: Option<usize>) -> Vec<u8> {
    match truncate_at {
        None => encode_updates(DOMAIN, updates).expect("encode"),
        Some(k) => {
            let mut buf = Vec::new();
            let mut writer = FrameWriter::new(&mut buf, DOMAIN)
                .expect("header")
                .with_frame_updates(16)
                .expect("frame size");
            writer.write_batch(&updates[..k]).expect("prefix");
            writer.flush_frame().expect("flush");
            drop(writer); // no finish(): the stream is truncated
            buf
        }
    }
}

/// What the policy keeps of a client stream.
fn kept(updates: &[Update], cut: Option<usize>, policy: ServePolicy) -> &[Update] {
    match (cut, policy) {
        (None, _) => updates,
        (Some(k), ServePolicy::MergeCompleted) => &updates[..k],
        (Some(_), ServePolicy::DiscardPartial) => &[],
    }
}

type ClientSpec = (Vec<Update>, Option<usize>);
type RawClient = (Vec<(u64, i64)>, u64, u64);

fn client_specs(raw: &[RawClient]) -> Vec<ClientSpec> {
    raw.iter()
        .map(|(pairs, fail_die, cut_frac)| {
            let updates: Vec<Update> = pairs.iter().map(|&(i, d)| Update::new(i, d)).collect();
            let cut = (fail_die % 3 == 0).then(|| (*cut_frac as usize * updates.len()) / 10_000);
            (updates, cut)
        })
        .collect()
}

/// Single-threaded reference: one sketch absorbing every client's kept
/// updates in canonical order (the fold order the sharded server uses is
/// arbitrary — linearity makes it irrelevant, and the bit-equality below
/// is the proof).
fn reference(
    specs: &[ClientSpec],
    policy: ServePolicy,
    backend: HashBackend,
) -> (OnePassGSumSketch<PowerFunction>, u64) {
    let mut single = proto(backend);
    let mut durable = 0u64;
    for (updates, cut) in specs {
        let keep = kept(updates, *cut, policy);
        for &u in keep {
            single.update(u);
        }
        durable += keep.len() as u64;
    }
    (single, durable)
}

/// Send one framed client stream and return the server's verdict,
/// retrying whenever the connection was load-shed (a `BUSY` reply — or a
/// reset that wiped it) instead of served.
fn run_client(addr: SocketAddr, bytes: &[u8], complete: bool) -> Response {
    for _ in 0..2_000 {
        let retry = || std::thread::sleep(Duration::from_millis(2));
        let Ok(mut stream) = TcpStream::connect(addr) else {
            retry();
            continue;
        };
        // On a shed connection the server has already hung up; the write
        // then fails or lands in the void, and the read below settles it.
        let _ = stream.write_all(bytes);
        if !complete {
            // A truncated producer "crashes": half-close the write side so
            // the server sees EOF mid-stream, then collect the verdict.
            let _ = stream.shutdown(Shutdown::Write);
        }
        let mut line = String::new();
        match BufReader::new(&stream).read_line(&mut line) {
            Ok(n) if n > 0 => {}
            // EOF or reset: the shed path's RST can wipe the BUSY line.
            _ => {
                retry();
                continue;
            }
        }
        match Response::parse(&line) {
            Ok(Response::Busy(_)) => retry(),
            Ok(resp) => return resp,
            Err(_) => retry(),
        }
    }
    panic!("client never got a verdict from the server");
}

/// Open a connection, confirm the server registered it (an answered `EST`
/// proves it occupies a connection slot), and keep it open.
fn holder(addr: SocketAddr) -> TcpStream {
    for _ in 0..2_000 {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            std::thread::sleep(Duration::from_millis(2));
            continue;
        };
        writeln!(stream, "EST").expect("send");
        let mut line = String::new();
        BufReader::new(stream.try_clone().expect("clone"))
            .read_line(&mut line)
            .expect("read");
        match Response::parse(&line) {
            Ok(Response::Est { .. }) => return stream,
            Ok(Response::Busy(_)) | Err(_) => std::thread::sleep(Duration::from_millis(2)),
            Ok(other) => panic!("unexpected holder reply {other:?}"),
        }
    }
    panic!("holder connection never registered");
}

/// Run `EST`, `COUNT`, `QUIT` over one persistent connection, retrying the
/// connect while lingering client slots drain.
fn query_and_quit(addr: SocketAddr) -> (u64, u64) {
    let stream = holder(addr); // the answered EST proves we hold a slot
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;

    writeln!(stream, "EST").expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    let Ok(Response::Est { bits }) = Response::parse(&line) else {
        panic!("expected EST reply, got {line:?}");
    };

    writeln!(stream, "COUNT").expect("send");
    line.clear();
    reader.read_line(&mut line).expect("read");
    let Ok(Response::Count(count)) = Response::parse(&line) else {
        panic!("expected COUNT reply, got {line:?}");
    };

    writeln!(stream, "QUIT").expect("send");
    line.clear();
    reader.read_line(&mut line).expect("read");
    assert_eq!(Response::parse(&line), Ok(Response::Bye));
    (bits, count)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole bit-exactness claim: N loopback clients through the
    /// reactor — a random subset dying mid-stream, every server first
    /// driven to its connection cap so at least one `BUSY` shed happens —
    /// land the serving state in checkpoint bytes identical to the
    /// single-threaded concat replay of the kept updates, under both hash
    /// backends, both policies, and varying worker-pool sizes.
    #[test]
    fn sharded_serving_equals_concat_replay_under_load_shedding(
        raw in prop::collection::vec(
            (prop::collection::vec((0..DOMAIN, -20i64..21), 1..80), 0u64..1_000, 0u64..10_000),
            1..5,
        ),
        workers in 1usize..4,
    ) {
        const MAX_CONNECTIONS: usize = 2;
        let specs = client_specs(&raw);
        for backend in BACKENDS {
            for policy in POLICIES {
                let (single, expect_durable) = reference(&specs, policy, backend);
                let expect_bytes = single.to_checkpoint_bytes().expect("save reference");

                let sheds = Arc::new(AtomicU64::new(0));
                let sheds_in_observer = Arc::clone(&sheds);
                let config = ServeConfig::new()
                    .with_policy(policy)
                    .with_checkpoint_every(37)
                    .with_workers(workers)
                    .with_max_connections(MAX_CONNECTIONS)
                    .with_pipeline(PipelinedIngest::new(2).with_batch_size(31))
                    .with_observer(move |event| {
                        if matches!(event, ServeEvent::ConnectionShed { .. }) {
                            sheds_in_observer.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                let server = GsumServer::boot(proto(backend), config, None).expect("boot");
                let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
                let addr = listener.local_addr().expect("addr");

                std::thread::scope(|scope| {
                    let server = &server;
                    let handle = scope.spawn(move || server.serve(listener).expect("serve"));

                    // Force a deterministic shed: fill every connection
                    // slot, then watch one more connection get the typed
                    // refusal.
                    let holders: Vec<TcpStream> =
                        (0..MAX_CONNECTIONS).map(|_| holder(addr)).collect();
                    let shed = TcpStream::connect(addr).expect("connect");
                    let mut line = String::new();
                    BufReader::new(shed).read_line(&mut line).expect("read");
                    assert_eq!(
                        Response::parse(&line),
                        Ok(Response::Busy(MAX_CONNECTIONS as u64)),
                        "a connection past the cap must get the typed refusal"
                    );
                    drop(holders);

                    // The client fleet; contention past the cap resolves
                    // through BUSY-and-retry inside run_client.
                    let verdicts: Vec<Response> = std::thread::scope(|clients| {
                        let handles: Vec<_> = specs
                            .iter()
                            .map(|(updates, cut)| {
                                let bytes = encode_client(updates, *cut);
                                clients.spawn(move || run_client(addr, &bytes, cut.is_none()))
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().expect("client")).collect()
                    });
                    for ((_, cut), verdict) in specs.iter().zip(&verdicts) {
                        match cut {
                            None => prop_assert!(
                                matches!(verdict, Response::Ok(_)),
                                "complete stream must be acknowledged, got {:?}", verdict
                            ),
                            Some(_) => prop_assert!(
                                matches!(verdict, Response::Err(_)),
                                "truncated stream must be refused, got {:?}", verdict
                            ),
                        }
                    }

                    let (est_bits, count) = query_and_quit(addr);
                    prop_assert_eq!(count, expect_durable);
                    prop_assert_eq!(
                        est_bits, single.estimate().to_bits(),
                        "EST must answer from exactly the reference state"
                    );

                    let summary = handle.join().expect("server thread");
                    prop_assert!(summary.clean_shutdown);
                    let cut_count = specs.iter().filter(|(_, c)| c.is_some()).count() as u64;
                    prop_assert_eq!(summary.stats.streams_completed,
                        specs.len() as u64 - cut_count);
                    prop_assert_eq!(summary.stats.streams_failed, cut_count);
                    if policy == ServePolicy::DiscardPartial {
                        let discarded: u64 =
                            specs.iter().filter_map(|(_, c)| *c).map(|c| c as u64).sum();
                        prop_assert_eq!(summary.stats.updates_discarded, discarded);
                    } else {
                        prop_assert_eq!(summary.stats.updates_discarded, 0);
                    }
                    prop_assert!(
                        sheds.load(Ordering::Relaxed) >= 1,
                        "the forced shed must be observed"
                    );
                    Ok(())
                })?;

                let snapshot = server.coordinator().snapshot().expect("snapshot");
                prop_assert_eq!(snapshot.durable_count(), expect_durable);
                prop_assert_eq!(
                    snapshot.state_bytes(),
                    expect_bytes.as_slice(),
                    "{:?}/{:?}/{} workers: sharded serving state must equal \
                     the single-threaded concat replay bit for bit",
                    policy, backend, workers
                );
            }
        }
    }
}

/// Boot a default-config server and hand `(addr, join-me)` to the body.
fn with_server<T>(
    config: ServeConfig,
    body: impl FnOnce(SocketAddr) -> T,
) -> (
    T,
    ServeSummary,
    GsumServer<OnePassGSumSketch<PowerFunction>>,
) {
    let server = GsumServer::boot(proto(HashBackend::Polynomial), config, None).expect("boot");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let (out, summary) = std::thread::scope(|scope| {
        let server = &server;
        let handle = scope.spawn(move || server.serve(listener).expect("serve"));
        let out = body(addr);
        (out, handle.join().expect("server thread"))
    });
    (out, summary, server)
}

/// A command line that arrives in two readiness events ("ES", pause, "T\n")
/// must parse exactly like one write — and the connection stays usable.
#[test]
fn command_split_across_readiness_events_parses_whole() {
    let ((), summary, _server) = with_server(ServeConfig::new(), |addr| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));

        stream.write_all(b"ES").expect("first half");
        std::thread::sleep(Duration::from_millis(30));
        stream.write_all(b"T\n").expect("second half");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert!(
            matches!(Response::parse(&line), Ok(Response::Est { .. })),
            "split EST must answer: {line:?}"
        );

        // Same connection, next request: COUNT split byte by byte.
        for b in b"COUNT\n" {
            stream.write_all(&[*b]).expect("byte");
        }
        line.clear();
        reader.read_line(&mut line).expect("read");
        assert_eq!(Response::parse(&line), Ok(Response::Count(0)));

        writeln!(stream, "QUIT").expect("send");
        line.clear();
        reader.read_line(&mut line).expect("read");
        assert_eq!(Response::parse(&line), Ok(Response::Bye));
    });
    assert!(summary.clean_shutdown);
}

/// A framed wire stream dribbled out in arbitrary small chunks — cutting
/// headers, frame headers and update payloads mid-field — decodes to the
/// same acknowledged stream as one contiguous write.
#[test]
fn wire_stream_split_mid_frame_decodes_whole() {
    let updates: Vec<Update> = (0..50u64)
        .map(|i| Update::new(i % DOMAIN, 3 - i as i64))
        .collect();
    let bytes = encode_client(&updates, None);
    let (verdict, summary, server) = with_server(ServeConfig::new(), |addr| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        for chunk in bytes.chunks(7) {
            stream.write_all(chunk).expect("chunk");
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut line = String::new();
        BufReader::new(stream.try_clone().expect("clone"))
            .read_line(&mut line)
            .expect("read");
        let verdict = Response::parse(&line).expect("parse");
        drop(stream);
        query_and_quit(addr);
        verdict
    });
    assert_eq!(verdict, Response::Ok(updates.len() as u64));
    assert!(summary.clean_shutdown);
    let mut single = proto(HashBackend::Polynomial);
    for &u in &updates {
        single.update(u);
    }
    assert_eq!(
        server.estimate().to_bits(),
        single.estimate().to_bits(),
        "dribbled ingest must land on the single-shot state"
    );
}

/// Garbage that never newline-terminates is rejected with a typed error
/// once it exceeds the command-line bound, and the connection is closed —
/// not buffered forever.
#[test]
fn oversized_command_line_is_rejected_and_closed() {
    let ((), summary, _server) = with_server(ServeConfig::new(), |addr| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&[b'X'; 300]).expect("garbage");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        match Response::parse(&line) {
            Ok(Response::Err(reason)) => {
                assert!(reason.contains("too long"), "reason: {reason:?}")
            }
            other => panic!("expected ERR, got {other:?}"),
        }
        line.clear();
        let n = reader.read_line(&mut line).expect("read");
        assert_eq!(n, 0, "the connection must be closed after the rejection");
        drop(stream);
        query_and_quit(addr);
    });
    assert!(summary.clean_shutdown);
}

/// One connection, everything pipelined in a single write: a query, a full
/// ingest stream, another query, a second stream, QUIT.  The reactor must
/// preserve request boundaries (the decoder stops consuming at each END
/// frame) and answer in order.
#[test]
fn interleaved_queries_and_ingest_pipeline_on_one_connection() {
    let first: Vec<Update> = (0..40u64).map(|i| Update::new(i % DOMAIN, 2)).collect();
    let second: Vec<Update> = (0..25u64)
        .map(|i| Update::new((i * 3) % DOMAIN, -1))
        .collect();
    let mut wire = Vec::new();
    wire.extend_from_slice(b"EST\n");
    wire.extend_from_slice(&encode_client(&first, None));
    wire.extend_from_slice(b"COUNT\n");
    wire.extend_from_slice(&encode_client(&second, None));
    wire.extend_from_slice(b"QUIT\n");

    let (lines, summary, server) = with_server(ServeConfig::new(), |addr| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&wire).expect("pipelined write");
        let mut reader = BufReader::new(stream);
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).expect("read") == 0 {
                break;
            }
            lines.push(Response::parse(&line).expect("parse"));
        }
        lines
    });
    let total = (first.len() + second.len()) as u64;
    assert!(
        matches!(lines[0], Response::Est { .. }),
        "first reply answers the leading EST: {lines:?}"
    );
    assert_eq!(lines[1], Response::Ok(first.len() as u64));
    assert_eq!(lines[2], Response::Count(first.len() as u64));
    assert_eq!(lines[3], Response::Ok(total));
    assert_eq!(lines[4], Response::Bye);
    assert_eq!(lines.len(), 5);
    assert!(summary.clean_shutdown);
    assert_eq!(server.durable_count(), total);
    assert_eq!(summary.stats.streams_completed, 2);
}

/// The shed reply is deterministic: with every slot provably occupied, the
/// next connection reads exactly `BUSY <cap>` and nothing is ingested.
#[test]
fn connection_past_the_cap_reads_busy_deterministically() {
    let sheds = Arc::new(AtomicU64::new(0));
    let sheds_in_observer = Arc::clone(&sheds);
    let config = ServeConfig::new()
        .with_max_connections(1)
        .with_observer(move |event| {
            if matches!(event, ServeEvent::ConnectionShed { .. }) {
                sheds_in_observer.fetch_add(1, Ordering::Relaxed);
            }
        });
    let sheds_in_body = Arc::clone(&sheds);
    let ((), summary, server) = with_server(config, |addr| {
        let occupant = holder(addr);
        for _ in 0..3 {
            let shed = TcpStream::connect(addr).expect("connect");
            let mut line = String::new();
            BufReader::new(shed).read_line(&mut line).expect("read");
            assert_eq!(Response::parse(&line), Ok(Response::Busy(1)));
        }
        // A received BUSY line means its shed was fully processed, so the
        // count is exact here; the retrying shutdown query below may race
        // the reaping of `occupant` and shed a few more times.
        assert_eq!(sheds_in_body.load(Ordering::Relaxed), 3);
        drop(occupant);
        query_and_quit(addr);
    });
    assert!(summary.clean_shutdown);
    assert!(sheds.load(Ordering::Relaxed) >= 3);
    assert_eq!(server.durable_count(), 0);
    assert_eq!(summary.stats.streams_failed, 0);
}
