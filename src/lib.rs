//! # zerolaw — umbrella crate
//!
//! `zerolaw` is a from-scratch Rust reproduction of
//! *"Streaming Space Complexity of Nearly All Functions of One Variable on
//! Frequency Vectors"* (Braverman, Chestnut, Woodruff, Yang — PODS 2016).
//!
//! The workspace is split into focused crates; this umbrella crate re-exports
//! their public APIs so that downstream users (and the examples and
//! integration tests in this repository) can depend on a single crate.
//!
//! * [`hash`] — k-wise independent hashing, sign/bucket hashes, seeded RNG.
//! * [`streams`] — the turnstile stream model, frequency vectors and
//!   workload generators.
//! * [`sketch`] — CountSketch, Count-Min, the AMS F₂ sketch and exact
//!   baselines.
//! * [`gfunc`] — the function class `G`, the slow-jumping / slow-dropping /
//!   predictable analyzers and the zero-one-law classifier.
//! * [`core`] — the g-SUM algorithms (recursive sketch, 1-pass and 2-pass
//!   heavy hitters, the nearly-periodic special case, the DIST counter
//!   algorithm) and the paper's applications.
//! * [`comm`] — communication-problem instances (INDEX, DISJ, DISJ+IND,
//!   ShortLinearCombination) and their stream reductions, used to exercise
//!   the lower-bound side of the zero-one laws.
//! * [`serve`] — the serving layer: a concurrent multi-client TCP server
//!   with merge-on-ingest fan-in, failure policies for partial streams,
//!   durable checkpoint envelopes, and a multi-function estimator registry
//!   answering `EST <function>` for any registered G over one shared
//!   ingest path.
//!
//! ## Quickstart — push-based ingestion
//!
//! Estimators are long-lived [`StreamSink`](prelude::StreamSink) state
//! objects: push updates as they arrive (no materialized stream needed) and
//! query the estimate at any prefix.
//!
//! ```
//! use zerolaw::prelude::*;
//!
//! // Approximate Σ g(|v_i|) for g(x) = x^1.5 with a one-pass universal sketch.
//! let g = PowerFunction::new(1.5);
//! let cfg = GSumConfig::with_space_budget(1 << 10, 0.2, 4096, 11);
//! let mut sketch = OnePassGSumSketch::new(g.clone(), &cfg);
//!
//! // A lazy Zipf workload over a universe of 1024 items: updates are pulled
//! // one at a time and pushed straight into the sketch.
//! let mut source = ZipfStreamGenerator::new(StreamConfig::new(1 << 10, 20_000), 1.2, 7);
//! while let Some(update) = source.next_update() {
//!     sketch.update(update);
//! }
//! let est = sketch.estimate();
//!
//! // Ground truth from a materialized copy of the same stream.
//! source.reset();
//! let stream = source.collect_stream();
//! let exact = exact_gsum(&g, &stream.frequency_vector());
//! let rel = (est - exact).abs() / exact.max(1.0);
//! assert!(rel < 0.5, "relative error {rel} too large");
//! ```
//!
//! ### Batched ingestion and hash backends
//!
//! The per-update hot path is tunable on two axes:
//!
//! * **Batching.** [`StreamSink::update_batch`](prelude::StreamSink::update_batch)
//!   is overridden by every linear sketch to *coalesce* duplicate items
//!   exactly in `i64` before touching the counters: a Zipf head item
//!   appearing thousands of times in a batch is hashed once per row instead
//!   of thousands of times, and counters are walked row-major for cache
//!   locality.  The result is bit-for-bit identical to per-update ingestion
//!   (linearity makes coalescing exact), checked by the
//!   `batch_equivalence` property tests.  The batch paths are
//!   **allocation-free in steady state**: every sketch owns a reusable
//!   ingestion scratch (coalesce buffers, per-row column indices, routing
//!   depths) that is working memory only — it is excluded from clones,
//!   merges and checkpoints, so checkpoint bytes are identical whichever
//!   ingestion path filled the sketch.  When batch deltas are small enough
//!   that every partial sum is exactly representable, counter application
//!   runs in `i64` with branchless sign selection — bit-identical to the
//!   `f64` path, but vectorizable (build with `RUSTFLAGS="-C
//!   target-cpu=native"` to let the compiler use wider SIMD lanes).
//! * **Batched hash kernels.** Under the batch paths the hash stage itself
//!   is batch-shaped: [`RowHasher`](prelude::RowHasher) exposes
//!   `column_sign_batch` / `column_batch` kernels that take a slice of keys
//!   and fill structure-of-arrays column/sign buffers.  The polynomial
//!   backend hoists the row's coefficients out of the key loop and
//!   accumulates each degree-3 dot product lazily in `u128` with a single
//!   reduction; the tabulation backend walks keys in blocks of 16 so table
//!   lookups pipeline.  Both are bit-identical to the per-key calls they
//!   replace (proptested in `tests/batch_equivalence.rs`), so checkpoint
//!   bytes never depend on which path ran.  These kernels are plain
//!   autovectorizable scalar loops — `RUSTFLAGS="-C target-cpu=native"` is
//!   the build floor for the throughput numbers quoted in `ROADMAP.md`.
//! * **Item-outer AMS sign kernels.** The AMS tug-of-war sketch inside the
//!   one-pass heavy hitter evaluates *hundreds* of sign hashes per item, so
//!   its hot loop is shaped differently: the sign bank
//!   ([`SignBank`](prelude::SignBank)) fills a packed `items × counters`
//!   sign matrix once per coalesced batch — key powers amortize across
//!   counters, coefficient loads amortize across items, and an AVX-512
//!   limb-decomposed lowering is dispatched at runtime where the CPU has it
//!   — and the counters then stream their packed bit rows with fused
//!   whole-block ± accumulation.  Every lowering is bit-identical to
//!   per-item evaluation (proptested in `tests/batch_equivalence.rs`), and
//!   the per-update path is literally the block kernel at length 1.
//! * **Hash backend.** Sketch rows draw their bucket and sign hashes from a
//!   pluggable [`HashBackend`](prelude::HashBackend): `Polynomial` (the
//!   provable default — pairwise/4-wise independent polynomials over
//!   `GF(2^61 − 1)`) or `Tabulation` (Pătraşcu–Thorup simple tabulation —
//!   3-wise independent, multiplication-free, measurably faster).  Both use
//!   division-free multiply-shift bucket reduction.  Select it with
//!   `CountSketchConfig::with_backend` / `CountMinConfig::with_backend`, or
//!   for the whole estimator stack with `GSumConfig::with_hash_backend`;
//!   merges refuse sketches built with different backends.
//! * **Sign family.** The AMS sign source has the analogous knob,
//!   [`SignFamily`](prelude::SignFamily): `Polynomial4` (the default —
//!   4-wise independent, exactly the independence the `Var[Z²] ≤ 2F₂²`
//!   variance bound consumes) or `Tabulation` (3-wise independent and
//!   faster; the mean `E[Z²] = F₂` stays exact but the variance constant
//!   becomes heuristic).  Select it with `GSumConfig::with_sign_family`;
//!   checkpoints carry the family tag and merges refuse mismatched
//!   families.
//!
//! ```
//! use zerolaw::prelude::*;
//!
//! let cfg = GSumConfig::with_space_budget(1 << 8, 0.2, 256, 3)
//!     .with_hash_backend(HashBackend::Tabulation);
//! let mut sketch = OnePassGSumSketch::new(PowerFunction::new(2.0), &cfg);
//! let batch: Vec<Update> = (0..1000).map(|i| Update::new(i % 17, 1)).collect();
//! sketch.update_batch(&batch); // 17 distinct items hashed, not 1000
//! assert!(sketch.estimate() > 0.0);
//! ```
//!
//! ### Sharded ingestion
//!
//! Every sketch is linear ([`MergeableSketch`](prelude::MergeableSketch)):
//! clones absorb disjoint shards of the traffic on separate threads and merge
//! into exactly the single-threaded state.
//!
//! ```
//! use zerolaw::prelude::*;
//!
//! let cfg = GSumConfig::with_space_budget(1 << 8, 0.2, 256, 3);
//! let prototype = OnePassGSumSketch::new(PowerFunction::new(2.0), &cfg);
//! let mut source = ZipfStreamGenerator::new(StreamConfig::new(1 << 8, 10_000), 1.2, 5);
//! let sketch = ShardedIngest::new(4)
//!     .ingest(&mut source, &prototype)
//!     .expect("clones always merge");
//! assert!(sketch.estimate() > 0.0);
//! ```
//!
//! ### Checkpoint lifecycle — stop, snapshot, resume
//!
//! A linear sketch's entire state is *seeds + counters + phase*, so every
//! estimator implements [`Checkpoint`](prelude::Checkpoint): `save` writes a
//! compact, versioned little-endian byte string (hash functions as their
//! seeds, counters verbatim, two-pass phase tags and frozen candidate sets
//! explicitly) and `restore` rehydrates it **bit-for-bit** — saving at an
//! arbitrary stream prefix, restoring, and replaying the suffix lands in
//! exactly the state an uninterrupted run reaches.  Malformed bytes
//! (truncation, wrong version, wrong state kind, unknown hash backend) are
//! [`CheckpointError`](prelude::CheckpointError)s, never panics.
//!
//! ```
//! use zerolaw::prelude::*;
//!
//! let cfg = GSumConfig::with_space_budget(1 << 8, 0.2, 256, 3);
//! let prototype = OnePassGSumSketch::new(PowerFunction::new(2.0), &cfg);
//! let ingest = ShardedIngest::new(2);
//!
//! // Ingest a bounded slice of the stream, then stop and snapshot.
//! let mut source = ZipfStreamGenerator::new(StreamConfig::new(1 << 8, 10_000), 1.2, 5);
//! let (partial, consumed) = ingest
//!     .ingest_limited(&mut source, &prototype, 4_000)
//!     .expect("clones always merge");
//! assert_eq!(consumed, 4_000);
//! let bytes = partial.to_checkpoint_bytes().expect("serialize");
//!
//! // ...later (possibly elsewhere): restore and continue with the rest.
//! let resumed = ingest
//!     .resume(&mut source, &prototype, &mut bytes.as_slice())
//!     .expect("resume");
//! assert!(resumed.estimate() > 0.0);
//! ```
//!
//! ### The sharded two-pass protocol
//!
//! Two-pass estimators are a three-step state machine (pass 1 →
//! `begin_second_pass()` → pass 2, a replay), and sharding the second pass
//! requires every worker to hold the *same* frozen candidate sets.  The
//! [`ShardedTwoPassCoordinator`](prelude::ShardedTwoPassCoordinator)
//! automates the protocol: phase 1 is ordinary sharded ingestion, the
//! transition happens exactly once on the merged state, and the frozen state
//! is redistributed to the phase-2 workers as checkpoint bytes
//! (clone-after-transition — what a multi-machine coordinator broadcasts).
//! The result is bit-identical to a single-threaded two-pass run.
//!
//! ```
//! use zerolaw::prelude::*;
//!
//! let cfg = GSumConfig::with_space_budget(1 << 8, 0.2, 128, 3);
//! let stream = ZipfStreamGenerator::new(StreamConfig::new(1 << 8, 8_000), 1.2, 5).generate();
//! let prototype = TwoPassGSumSketch::new(PowerFunction::new(2.0), &cfg);
//! let (sketch, frozen_bytes) = ShardedTwoPassCoordinator::new(2)
//!     .run(&prototype, &mut stream.source(), &mut stream.source())
//!     .expect("coordinator run");
//! assert!(sketch.in_second_pass());
//! assert!(!frozen_bytes.is_empty()); // persist to restart phase 2 at will
//! ```
//!
//! ### Wire ingestion — framed streams and the backpressured pipeline
//!
//! Updates arriving from the outside world travel as a **framed wire
//! stream** ([`FrameWriter`](prelude::FrameWriter) /
//! [`FrameReader`](prelude::FrameReader)): a versioned little-endian header,
//! length-prefixed frames of `(item, delta)` batches, and an explicit
//! end-of-stream frame, so truncation is always distinguishable from clean
//! completion and malformed bytes are typed
//! [`WireError`](prelude::WireError)s.  `FrameReader` implements
//! [`UpdateSource`](prelude::UpdateSource), so a socket feeds any sink
//! unchanged — and feeds [`PipelinedIngest`](prelude::PipelinedIngest),
//! which stages decode/coalesce and N hash+apply workers over *bounded*
//! channels: when workers lag, the producer blocks (on a socket that
//! propagates to the peer via TCP flow control), and the merged result is
//! bit-identical to single-threaded ingestion.
//! `examples/ingest_server.rs` wires the three layers into a TCP serving
//! loop that checkpoints every K updates and resumes bit-exactly after a
//! kill.
//!
//! ```
//! use zerolaw::prelude::*;
//! use zerolaw::streams::wire::encode_updates;
//!
//! let cfg = GSumConfig::with_space_budget(1 << 8, 0.2, 128, 3);
//! let prototype = OnePassGSumSketch::new(PowerFunction::new(2.0), &cfg);
//!
//! // Producer side: frame a batch of updates (any Write works — here a Vec,
//! // in production a socket).
//! let updates: Vec<Update> = (0..4_000).map(|i| Update::new(i % 97, 1)).collect();
//! let bytes = encode_updates(1 << 8, &updates).expect("encode");
//!
//! // Consumer side: decode + pipeline the stream into worker clones.
//! let reader = FrameReader::new(bytes.as_slice()).expect("wire header");
//! let (sketch, count, _io) = PipelinedIngest::new(2)
//!     .with_batch_size(512)
//!     .with_channel_depth(4)
//!     .ingest_wire(reader, &prototype)
//!     .expect("stream decodes cleanly");
//! assert_eq!(count, 4_000);
//!
//! // Bit-identical to the single-threaded run.
//! let mut single = prototype.clone();
//! for &u in &updates {
//!     single.update(u);
//! }
//! assert_eq!(sketch.estimate().to_bits(), single.estimate().to_bits());
//! ```
//!
//! ### The serving layer — reactor-multiplexed multi-client merge-on-ingest
//!
//! [`GsumServer`](prelude::GsumServer) is the long-lived process the wire,
//! pipeline and checkpoint layers feed: a single reactor thread multiplexes
//! every TCP connection over a non-blocking listener, decoding framed
//! streams incrementally ([`FrameDecoder`](prelude::FrameDecoder) resumes
//! mid-frame across readiness events), and a **bounded pool of fold
//! workers** absorbs decoded batches into per-worker shard sketches that a
//! [`MergeCoordinator`](prelude::MergeCoordinator) folds into the serving
//! state on query, checkpoint cadence, or stream completion.  Linearity
//! makes the sharded fan-in exact: any number of concurrent clients, folded
//! in any order, land in a state **bit-identical** to a single-threaded
//! replay of the concatenated streams (`examples/multi_client.rs` proves
//! this over real sockets; `tests/serve_reactor.rs` proptests it under
//! load shedding).  The knobs live on [`ServeConfig`](prelude::ServeConfig):
//! `with_workers` sizes the fold pool, `with_max_connections` caps
//! concurrent connections — excess clients get a typed `BUSY <max>` refusal
//! to retry on, never a silently growing accept queue — and
//! `with_observer` routes serving-loop events
//! ([`ServeEvent`](prelude::ServeEvent): sheds, timeouts, stream failures)
//! into telemetry instead of stderr.  A stream that dies mid-frame is
//! resolved by the configured [`ServePolicy`](prelude::ServePolicy) —
//! discarded whole, or merged up to its decoded prefix — and the serving
//! state snapshots to a
//! [`CheckpointEnvelope`](prelude::CheckpointEnvelope) (state bytes bound to
//! the durable update count, published atomically) every K merged updates.
//! Serving throughput numbers live in `BENCH_serve.json` (see
//! `crates/bench/benches/bench_serve.rs`): connections/sec, concurrent
//! ingest throughput, and p99 `EST`/`COUNT` latency — including, since
//! serve schema v2, per-function `EST <function>` latency rows against a
//! served registry.
//!
//! The coordinator is transport-free, so fan-in does not require sockets —
//! or even one machine: parked checkpoint bytes fold too.
//!
//! ```
//! use zerolaw::prelude::*;
//! use zerolaw::streams::wire::encode_updates;
//!
//! let cfg = GSumConfig::with_space_budget(1 << 8, 0.2, 128, 3);
//! let prototype = OnePassGSumSketch::new(PowerFunction::new(2.0), &cfg);
//! let coordinator =
//!     MergeCoordinator::new(prototype.clone(), 0, 256, None, None).expect("config");
//! let pipeline = PipelinedIngest::new(2);
//!
//! // Two "clients", each a framed stream (in production: sockets).
//! let a: Vec<Update> = (0..900).map(|i| Update::new(i % 97, 1)).collect();
//! let b: Vec<Update> = (0..700).map(|i| Update::new(i % 31, -1)).collect();
//! for stream in [&a, &b] {
//!     let bytes = encode_updates(1 << 8, stream).expect("encode");
//!     let mut frames = FrameReader::new(bytes.as_slice()).expect("header");
//!     let outcome = coordinator
//!         .ingest_stream(&prototype, &pipeline, ServePolicy::DiscardPartial, &mut frames)
//!         .expect("ingest");
//!     assert!(outcome.completed());
//! }
//!
//! // Bit-identical to one sketch absorbing both streams back to back.
//! let mut single = prototype.clone();
//! for &u in a.iter().chain(&b) {
//!     single.update(u);
//! }
//! assert_eq!(
//!     coordinator.snapshot().expect("snapshot").state_bytes(),
//!     single.to_checkpoint_bytes().expect("save").as_slice()
//! );
//! ```
//!
//! ### Multi-statistic serving — one ingest stream, many estimators
//!
//! The one-pass sketch's ingest path never evaluates its G function: the
//! absorbed state is pure frequency structure, and `g` enters only at
//! query time (per-level covers) and checkpoint time (encoded
//! parameters).  [`SketchRegistry`](prelude::SketchRegistry) exploits
//! that to turn one server into a multi-statistic analytics service:
//! register any number of named G functions
//! ([`DynG`](prelude::DynG)-erased, so the set is chosen at runtime),
//! ingest the stream **once**, and answer every registered function at
//! any prefix.  Estimators registered with an identical
//! [`GSumConfig`](prelude::GSumConfig) (dimensions, backend, *and* seed —
//! the substrate key) share a single CountSketch/heavy-hitter substrate,
//! so ingest cost scales with distinct configurations, never with
//! registered functions.  The registry implements the full
//! [`ServableSketch`](prelude::ServableSketch) contract — a
//! [`GsumServer`](prelude::GsumServer) serves it unchanged, answering
//! `EST` (the default function), `EST <function>` (any registered name;
//! unknown names get a typed `ERR` without closing the connection) and
//! `FUNCS` (the registered names), and checkpoints it as one versioned
//! composite.  Per-function answers and per-function checkpoint bytes
//! are **bit-identical** to a single-function sketch of the same
//! configuration replaying the same stream (`tests/serve_registry.rs`
//! proptests this over real sockets under both hash backends and both
//! failure policies; `examples/multi_client.rs` demonstrates it).
//!
//! ```
//! use zerolaw::prelude::*;
//!
//! let cfg = GSumConfig::with_space_budget(1 << 8, 0.2, 128, 3);
//! let mut registry = SketchRegistry::new();
//! registry.register(PowerFunction::new(2.0), &cfg).expect("register");
//! registry.register(CappedLinear::new(100), &cfg).expect("register");
//! registry.register(PolylogFunction::new(2.0), &cfg).expect("register");
//! assert_eq!(registry.substrate_count(), 1); // one shared ingest substrate
//!
//! // Ingest once; every registered function answers at any prefix.
//! let updates: Vec<Update> = (0..2_000).map(|i| Update::new(i % 97, 1)).collect();
//! registry.update_batch(&updates);
//! assert_eq!(registry.function_names()[0], "x^2"); // bare-EST default
//! for name in registry.function_names() {
//!     assert!(registry.estimate_for(&name).is_some());
//! }
//!
//! // Bit-identical to a single-function sketch replaying the same stream.
//! let mut single =
//!     OnePassGSumSketch::with_seed(DynG::new(CappedLinear::new(100)), &cfg, cfg.seed);
//! single.update_batch(&updates);
//! assert_eq!(
//!     registry.estimate_for("min(x, 100)").map(f64::to_bits),
//!     Some(single.estimate().to_bits())
//! );
//! assert_eq!(
//!     registry.checkpoint_for("min(x, 100)").expect("registered").expect("save"),
//!     single.to_checkpoint_bytes().expect("save")
//! );
//! ```

pub use gsum_comm as comm;
pub use gsum_core as core;
pub use gsum_gfunc as gfunc;
pub use gsum_hash as hash;
pub use gsum_serve as serve;
pub use gsum_sketch as sketch;
pub use gsum_streams as streams;

/// A convenience prelude re-exporting the most commonly used types.
pub mod prelude {
    pub use gsum_comm::{
        DisjIndInstance, DisjInstance, DistInstance, IndexInstance, SketchDistinguisher,
    };
    pub use gsum_core::{
        exact_gsum, DistCounter, GSumConfig, GSumEstimator, NearlyPeriodicGSum, OnePassGSum,
        OnePassGSumSketch, RecursiveSketch, TwoPassGSum, TwoPassGSumSketch, DEFAULT_HINT_CAP,
    };
    pub use gsum_gfunc::{
        classify::{OnePassVerdict, TractabilityReport, TwoPassVerdict},
        decode_function,
        library::{
            CappedLinear, GnpFunction, OscillatingQuadratic, PoissonMixtureNll, PolylogFunction,
            PowerFunction, SpamDiscountUtility,
        },
        properties::PropertyConfig,
        registry::FunctionRegistry,
        DynFunction, DynG, FunctionCodec, GFunction,
    };
    pub use gsum_hash::{HashBackend, RowHasher, SignBank, SignFamily, SignHashBank, TabSignBank};
    pub use gsum_serve::{
        protocol, CheckpointEnvelope, Command, FoldOutcome, GsumServer, MergeCoordinator,
        ProtocolError, RegistryError, Response, ServableSketch, ServableSubstrate, ServeConfig,
        ServeConfigError, ServeError, ServeEvent, ServeObserver, ServePolicy, ServeStats,
        ServeSummary, SketchRegistry, StreamOutcome,
    };
    pub use gsum_sketch::{
        AmsF2Sketch, CountMinConfig, CountMinSketch, CountSketch, CountSketchConfig,
        ExactFrequencies, FrequencySketch,
    };
    pub use gsum_streams::{
        coalesce_updates, Checkpoint, CheckpointError, FrameDecoder, FrameReader, FrameWriter,
        FrequencyVector, IngestConfigError, IterSource, MergeError, MergeableSketch, ParkedState,
        PipelineError, PipelinedIngest, PlantedStreamGenerator, ShardedIngest,
        ShardedTwoPassCoordinator, StreamConfig, StreamGenerator, StreamSink, TurnstileStream,
        TwoPhaseSketch, UniformStreamGenerator, Update, UpdateSource, WireError, WireProgress,
        ZipfStreamGenerator,
    };
}
